//! The three-way objective of §3.3, assembled on an autograd tape per batch.
//!
//! Gradient scope follows Algorithm 1's batch updating: embeddings of batch
//! nodes are *fresh* (differentiable through the encoder); counterpart
//! embeddings outside the batch are taken from the detached embedding cache
//! `Z` updated at each batch step and renewed every epoch.

use std::rc::Rc;

use coane_graph::NodeId;
use coane_nn::{Matrix, Tape, Var};
use coane_walks::{CoMatrices, PositivePairs};

use crate::config::{NegativeLossKind, PositiveLossKind};

/// Where a counterpart node's embedding row comes from.
#[derive(Clone, Copy, Debug)]
enum Side {
    /// Fresh row: local index into the batch embedding matrix.
    Fresh(u32),
    /// Detached row from the embedding cache.
    Cached(NodeId),
}

/// Resolves each counterpart to fresh or cached, then materializes the two
/// gathered operand matrices: a differentiable gather for fresh rows and a
/// constant for cached rows. Returns `(fresh_positions, fresh_idx,
/// cached_positions, cached_rows)` where positions index into the original
/// pair list.
struct SplitGather {
    fresh_pos: Vec<usize>,
    fresh_idx: Vec<u32>,
    cached_pos: Vec<usize>,
    cached_rows: Vec<NodeId>,
}

fn split_counterparts(counterparts: &[Side]) -> SplitGather {
    let mut s = SplitGather {
        fresh_pos: Vec::new(),
        fresh_idx: Vec::new(),
        cached_pos: Vec::new(),
        cached_rows: Vec::new(),
    };
    for (k, &side) in counterparts.iter().enumerate() {
        match side {
            Side::Fresh(local) => {
                s.fresh_pos.push(k);
                s.fresh_idx.push(local);
            }
            Side::Cached(v) => {
                s.cached_pos.push(k);
                s.cached_rows.push(v);
            }
        }
    }
    s
}

fn gather_cached(z_cache: &Matrix, rows: &[NodeId], col_range: std::ops::Range<usize>) -> Matrix {
    let mut out = Matrix::zeros(rows.len(), col_range.len());
    for (r, &v) in rows.iter().enumerate() {
        out.row_mut(r).copy_from_slice(&z_cache.row(v as usize)[col_range.clone()]);
    }
    out
}

/// Inputs shared by the loss builders.
pub struct LossContext<'a> {
    /// Batch nodes in order.
    pub batch_nodes: &'a [NodeId],
    /// `local[v] = Some(k)` iff `batch_nodes[k] == v`.
    pub local: &'a [Option<u32>],
    /// Detached full embedding matrix `(n, d')`.
    pub z_cache: &'a Matrix,
}

impl LossContext<'_> {
    fn side_of(&self, v: NodeId) -> Side {
        match self.local[v as usize] {
            Some(k) => Side::Fresh(k),
            None => Side::Cached(v),
        }
    }
}

/// Positive structure loss for the batch. Returns `None` when the ablation
/// disables it or the batch contributes no pairs.
///
/// - [`PositiveLossKind::GraphLikelihood`]:
///   `L_pos = −Σ D̃_ij · log σ(L_i · R_j)` over each batch node's top-`k_p`
///   pairs, with `Z = [L|R]` split column-wise (§3.3.1).
/// - [`PositiveLossKind::SkipGram`]: `−Σ Dᴺ_ij · log σ(z_i · z_j)` over all
///   co-occurring pairs, full embeddings on both sides.
pub fn positive_loss(
    tape: &mut Tape,
    z_batch: Var,
    ctx: &LossContext<'_>,
    kind: PositiveLossKind,
    pairs: &PositivePairs,
    co: &CoMatrices,
) -> Option<Var> {
    let d = ctx.z_cache.cols();
    let half = d / 2;
    // Assemble (i, j, w) triples for this batch.
    let mut triples: Vec<(u32, NodeId, f32)> = Vec::new();
    match kind {
        PositiveLossKind::None => return None,
        PositiveLossKind::GraphLikelihood => {
            for (k, &v) in ctx.batch_nodes.iter().enumerate() {
                for &(_, j, w) in pairs.pairs_of(v) {
                    triples.push((k as u32, j, w));
                }
            }
        }
        PositiveLossKind::SkipGram => {
            for (k, &v) in ctx.batch_nodes.iter().enumerate() {
                let (idx, val) = co.d.row(v);
                let sum: f32 = val.iter().sum();
                if sum == 0.0 {
                    continue;
                }
                for (&j, &cnt) in idx.iter().zip(val) {
                    if j != v {
                        triples.push((k as u32, j, cnt / sum));
                    }
                }
            }
        }
    }
    if triples.is_empty() {
        return None;
    }

    let (lrange, rrange) = match kind {
        PositiveLossKind::GraphLikelihood => (0..half, half..d),
        _ => (0..d, 0..d),
    };
    // Left operand: rows of the fresh batch embedding.
    let i_idx: Vec<u32> = triples.iter().map(|t| t.0).collect();
    let li = tape.gather_rows(z_batch, Rc::new(i_idx));
    let l = tape.slice_cols(li, lrange);

    // Right operand: fresh where the counterpart is in the batch, cached
    // otherwise. Compute dots separately and weight-sum both.
    let sides: Vec<Side> = triples.iter().map(|t| ctx.side_of(t.1)).collect();
    let split = split_counterparts(&sides);
    let mut terms: Vec<Var> = Vec::new();
    if !split.fresh_pos.is_empty() {
        let lf = gather_positions(tape, l, &split.fresh_pos);
        let rj = tape.gather_rows(z_batch, Rc::new(split.fresh_idx.clone()));
        let r = tape.slice_cols(rj, rrange.clone());
        let dot = tape.rows_dot(lf, r);
        terms.push(weighted_neg_logsig(tape, dot, &split.fresh_pos, &triples));
    }
    if !split.cached_pos.is_empty() {
        let lc = gather_positions(tape, l, &split.cached_pos);
        let r = tape.constant(gather_cached(ctx.z_cache, &split.cached_rows, rrange));
        let dot = tape.rows_dot(lc, r);
        terms.push(weighted_neg_logsig(tape, dot, &split.cached_pos, &triples));
    }
    Some(sum_vars(tape, terms))
}

fn gather_positions(tape: &mut Tape, m: Var, positions: &[usize]) -> Var {
    let idx: Vec<u32> = positions.iter().map(|&p| p as u32).collect();
    tape.gather_rows(m, Rc::new(idx))
}

/// `Σ_k w_k · (−log σ(dot_k))` for the selected positions.
fn weighted_neg_logsig(
    tape: &mut Tape,
    dot: Var,
    positions: &[usize],
    triples: &[(u32, NodeId, f32)],
) -> Var {
    let w: Vec<f32> = positions.iter().map(|&p| triples[p].2).collect();
    let wmat = tape.constant(Matrix::from_vec(w.len(), 1, w));
    let ls = tape.log_sigmoid(dot);
    let weighted = tape.mul(ls, wmat);
    let s = tape.sum(weighted);
    tape.scale(s, -1.0)
}

fn sum_vars(tape: &mut Tape, terms: Vec<Var>) -> Var {
    let mut it = terms.into_iter();
    let first = it.next().expect("at least one term");
    it.fold(first, |acc, t| tape.add(acc, t))
}

/// Negative-sampling loss for the batch. `negatives[k]` lists the sampled
/// negatives for `batch_nodes[k]`. Returns `None` when disabled or when no
/// negatives were supplied.
///
/// - [`NegativeLossKind::Contextual`]: `a · Σ (z_i · z_j)²` (§3.3.2).
/// - [`NegativeLossKind::Uniform`]: word2vec's `−Σ log σ(−z_i · z_j)`.
pub fn negative_loss(
    tape: &mut Tape,
    z_batch: Var,
    ctx: &LossContext<'_>,
    kind: NegativeLossKind,
    negatives: &[Vec<NodeId>],
    neg_strength: f32,
) -> Option<Var> {
    if kind == NegativeLossKind::None {
        return None;
    }
    assert_eq!(negatives.len(), ctx.batch_nodes.len());
    let d = ctx.z_cache.cols();
    let mut i_idx: Vec<u32> = Vec::new();
    let mut sides: Vec<Side> = Vec::new();
    for (k, negs) in negatives.iter().enumerate() {
        for &j in negs {
            i_idx.push(k as u32);
            sides.push(ctx.side_of(j));
        }
    }
    if i_idx.is_empty() {
        return None;
    }
    let zi = tape.gather_rows(z_batch, Rc::new(i_idx));
    let split = split_counterparts(&sides);
    let mut terms: Vec<Var> = Vec::new();
    let push_term = |tape: &mut Tape, zi_sel: Var, zj: Var| {
        let dot = tape.rows_dot(zi_sel, zj);

        match kind {
            NegativeLossKind::Contextual => {
                let sq = tape.sqr(dot);
                let s = tape.sum(sq);
                tape.scale(s, neg_strength)
            }
            NegativeLossKind::Uniform => {
                let neg = tape.scale(dot, -1.0);
                let ls = tape.log_sigmoid(neg);
                let s = tape.sum(ls);
                tape.scale(s, -1.0)
            }
            NegativeLossKind::None => unreachable!(),
        }
    };
    if !split.fresh_pos.is_empty() {
        let zi_sel = gather_positions(tape, zi, &split.fresh_pos);
        let zj = tape.gather_rows(z_batch, Rc::new(split.fresh_idx.clone()));
        terms.push(push_term(tape, zi_sel, zj));
    }
    if !split.cached_pos.is_empty() {
        let zi_sel = gather_positions(tape, zi, &split.cached_pos);
        let zj = tape.constant(gather_cached(ctx.z_cache, &split.cached_rows, 0..d));
        terms.push(push_term(tape, zi_sel, zj));
    }
    Some(sum_vars(tape, terms))
}

/// Attribute-preservation loss `γ · MSE(X̂, X)` (§3.3.3); `None` when the
/// decoder is ablated away.
pub fn attribute_loss(
    tape: &mut Tape,
    decoded: Option<Var>,
    x_target: &Matrix,
    gamma: f32,
) -> Option<Var> {
    decoded.map(|xhat| {
        let target = tape.constant(x_target.clone());
        let mse = tape.mse(xhat, target);
        tape.scale(mse, gamma)
    })
}

/// Sums whichever loss terms are present; `None` when the objective is empty.
pub fn total_loss(tape: &mut Tape, terms: [Option<Var>; 3]) -> Option<Var> {
    let present: Vec<Var> = terms.into_iter().flatten().collect();
    if present.is_empty() {
        None
    } else {
        Some(sum_vars(tape, present))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coane_graph::{GraphBuilder, NodeAttributes};
    use coane_nn::tape::stable_sigmoid;
    use coane_walks::{ContextSet, ContextsConfig};

    fn fixture() -> (coane_graph::AttributedGraph, CoMatrices, PositivePairs) {
        let mut b = GraphBuilder::new(4, 4);
        b.add_edges(&[(0, 1), (1, 2), (2, 3)]);
        let g = b.with_attrs(NodeAttributes::identity(4)).build();
        let walks = vec![vec![0, 1, 2, 3], vec![3, 2, 1, 0]];
        let cs = ContextSet::build(
            &walks,
            4,
            &ContextsConfig { context_size: 3, subsample_t: f64::INFINITY, seed: 0 },
        );
        let co = CoMatrices::build(&cs, &g);
        let pairs = PositivePairs::select(&co, cs.max_count());
        (g, co, pairs)
    }

    fn simple_ctx<'a>(
        batch: &'a [NodeId],
        local: &'a [Option<u32>],
        cache: &'a Matrix,
    ) -> LossContext<'a> {
        LossContext { batch_nodes: batch, local, z_cache: cache }
    }

    #[test]
    fn graph_likelihood_value_matches_manual() {
        let (_, co, pairs) = fixture();
        // 4 nodes, d' = 4 (half = 2). Batch = [0]; everything else cached.
        let cache = Matrix::from_rows(&[
            vec![0.1, 0.2, 0.3, 0.4],
            vec![0.5, -0.1, 0.2, 0.0],
            vec![-0.3, 0.4, 0.1, 0.2],
            vec![0.0, 0.1, -0.2, 0.3],
        ]);
        let batch = [0u32];
        let local = [Some(0), None, None, None];
        let ctx = simple_ctx(&batch, &local, &cache);
        let mut t = Tape::new();
        // fresh embedding of node 0 == cache row for easy manual math
        let z = t.leaf(Matrix::from_rows(&[vec![0.1, 0.2, 0.3, 0.4]]), true);
        let loss =
            positive_loss(&mut t, z, &ctx, PositiveLossKind::GraphLikelihood, &pairs, &co).unwrap();
        // manual: Σ_j w · −log σ(L_0 · R_j) over node 0's top-k pairs
        let mut want = 0.0f32;
        for &(_, j, w) in pairs.pairs_of(0) {
            let l = [0.1f32, 0.2];
            let r = [cache.get(j as usize, 2), cache.get(j as usize, 3)];
            let dot = l[0] * r[0] + l[1] * r[1];
            want += -w * stable_sigmoid(dot).ln();
        }
        assert!((t.value(loss).item() - want).abs() < 1e-5);
        // gradient flows into the fresh embedding
        t.backward(loss);
        let g = t.grad(z).unwrap();
        assert!(g.norm() > 0.0);
        // …and only through the L half of node 0
        assert_eq!(g.get(0, 2), 0.0);
        assert_eq!(g.get(0, 3), 0.0);
    }

    #[test]
    fn skip_gram_uses_full_embeddings() {
        let (_, co, pairs) = fixture();
        let cache = Matrix::zeros(4, 4);
        let batch = [1u32];
        let local = [None, Some(0), None, None];
        let ctx = simple_ctx(&batch, &local, &cache);
        let mut t = Tape::new();
        let z = t.leaf(Matrix::from_rows(&[vec![0.3, -0.2, 0.5, 0.1]]), true);
        let loss = positive_loss(&mut t, z, &ctx, PositiveLossKind::SkipGram, &pairs, &co).unwrap();
        t.backward(loss);
        let g = t.grad(z).unwrap();
        // all four embedding coordinates receive gradient (no [L|R] split)…
        // …but counterparts are all zero rows here, so the gradient is zero;
        // use the value instead: with zero counterparts, σ(0) = 0.5 and the
        // weights sum to 1 per batch row ⇒ loss = −Σ w log 0.5 = log 2.
        assert!((t.value(loss).item() - std::f32::consts::LN_2).abs() < 1e-5);
        assert_eq!(g.shape(), (1, 4));
    }

    #[test]
    fn wp_returns_none() {
        let (_, co, pairs) = fixture();
        let cache = Matrix::zeros(4, 4);
        let batch = [0u32];
        let local = [Some(0), None, None, None];
        let ctx = simple_ctx(&batch, &local, &cache);
        let mut t = Tape::new();
        let z = t.leaf(Matrix::zeros(1, 4), true);
        assert!(positive_loss(&mut t, z, &ctx, PositiveLossKind::None, &pairs, &co).is_none());
    }

    #[test]
    fn contextual_negative_is_scaled_square() {
        let cache = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 1.0]]);
        let batch = [0u32];
        let local = [Some(0), None, None];
        let ctx = simple_ctx(&batch, &local, &cache);
        let mut t = Tape::new();
        let z = t.leaf(Matrix::from_rows(&[vec![1.0, 1.0]]), true);
        let negs = vec![vec![1u32, 2]];
        let loss =
            negative_loss(&mut t, z, &ctx, NegativeLossKind::Contextual, &negs, 0.5).unwrap();
        // dots: z·cache[1] = 2, z·cache[2] = 4 → 0.5·(4 + 16) = 10
        assert!((t.value(loss).item() - 10.0).abs() < 1e-5);
        t.backward(loss);
        assert!(t.grad(z).unwrap().norm() > 0.0);
    }

    #[test]
    fn uniform_negative_is_logsig() {
        let cache = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let batch = [0u32];
        let local = [Some(0), None];
        let ctx = simple_ctx(&batch, &local, &cache);
        let mut t = Tape::new();
        let z = t.leaf(Matrix::from_rows(&[vec![1.0]]), true);
        let negs = vec![vec![1u32]];
        let loss = negative_loss(&mut t, z, &ctx, NegativeLossKind::Uniform, &negs, 9.9).unwrap();
        let want = -stable_sigmoid(-2.0f32).ln();
        assert!((t.value(loss).item() - want).abs() < 1e-5);
    }

    #[test]
    fn empty_negatives_give_none() {
        let cache = Matrix::zeros(2, 2);
        let batch = [0u32];
        let local = [Some(0), None];
        let ctx = simple_ctx(&batch, &local, &cache);
        let mut t = Tape::new();
        let z = t.leaf(Matrix::zeros(1, 2), true);
        let negs = vec![vec![]];
        assert!(negative_loss(&mut t, z, &ctx, NegativeLossKind::Contextual, &negs, 1.0).is_none());
        assert!(negative_loss(&mut t, z, &ctx, NegativeLossKind::None, &negs, 1.0).is_none());
    }

    #[test]
    fn attribute_loss_scales_mse() {
        let mut t = Tape::new();
        let xhat = t.leaf(Matrix::from_rows(&[vec![1.0, 0.0]]), true);
        let target = Matrix::from_rows(&[vec![0.0, 0.0]]);
        let loss = attribute_loss(&mut t, Some(xhat), &target, 4.0).unwrap();
        // MSE = 0.5, × 4 = 2
        assert!((t.value(loss).item() - 2.0).abs() < 1e-6);
        assert!(attribute_loss(&mut t, None, &target, 4.0).is_none());
    }

    #[test]
    fn total_loss_sums_present_terms() {
        let mut t = Tape::new();
        let a = t.constant(Matrix::scalar(1.0));
        let b = t.constant(Matrix::scalar(2.0));
        let total = total_loss(&mut t, [Some(a), None, Some(b)]).unwrap();
        assert_eq!(t.value(total).item(), 3.0);
        assert!(total_loss(&mut t, [None, None, None]).is_none());
    }
}
