//! Epoch-persistent context-row cache.
//!
//! Contexts are frozen once `prepare()` has run, yet the seed trainer
//! re-derived every batch's sparse operand from triplets (gather + sort)
//! each epoch. This module materializes *all* context rows once, in CSR
//! form and in [`ContextSet`] row order, so assembling a batch collapses to
//! concatenating per-node row ranges — two `memcpy`s per node via
//! [`SparseMatrix::select_row_ranges`], with exact-nnz allocation and no
//! sorting.
//!
//! The cache reproduces [`ContextBatch::build`]'s numbers *bit for bit*:
//! duplicate columns within a row are summed in slot-encounter order, which
//! is exactly the order `SparseMatrix::from_triplets`'s stable sort leaves
//! duplicates in. A proptest in `batch.rs` holds the two builders equal on
//! random graphs for both encoders.

use coane_graph::{AttributedGraph, NodeId};
use coane_nn::{Matrix, SparseMatrix};
use coane_walks::{ContextSet, PAD};
use std::ops::Range;
use std::sync::Arc;

use crate::batch::ContextBatch;
use crate::config::EncoderKind;

/// All context rows of a graph, materialized once per training run.
#[derive(Clone, Debug)]
pub struct ContextRowCache {
    /// `num_contexts × cols` sparse rows, grouped by center node in
    /// [`ContextSet`] order (`cols = c·d` conv, `d` fully-connected).
    rows: SparseMatrix,
    /// Per-node context row ranges (`len = n + 1`), mirroring the context
    /// set's grouping so the cache can be used without re-borrowing it.
    offsets: Vec<usize>,
    attr_dim: usize,
}

impl ContextRowCache {
    /// Materializes every context row for `contexts` under `encoder`.
    pub fn build(graph: &AttributedGraph, contexts: &ContextSet, encoder: EncoderKind) -> Self {
        let attrs = graph.attrs();
        let d = graph.attr_dim();
        let c = contexts.context_size();
        let cols = match encoder {
            EncoderKind::Convolution => c * d,
            EncoderKind::FullyConnected => d,
        };
        let n = contexts.num_nodes();
        let total_ctx = contexts.num_contexts();

        // Exact upper bound on nnz: every non-PAD slot contributes its attr
        // row once (duplicate-column merging can only shrink it; for the
        // convolutional layout with duplicate-free attr rows it is exact).
        let mut nnz_bound = 0usize;
        for v in 0..n as NodeId {
            for &u in contexts.slots_of(v) {
                if u != PAD {
                    nnz_bound += attrs.row(u).0.len();
                }
            }
        }

        let mut indptr = Vec::with_capacity(total_ctx + 1);
        indptr.push(0usize);
        let mut indices: Vec<u32> = Vec::with_capacity(nnz_bound);
        let mut values: Vec<f32> = Vec::with_capacity(nnz_bound);
        // Scratch for the fully-connected layout, where slots overlap in
        // column space and entries need a per-row stable sort + merge.
        let mut scratch: Vec<(u32, f32)> = Vec::new();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);

        for v in 0..n as NodeId {
            for window in contexts.contexts_of(v) {
                let row_start = indices.len();
                match encoder {
                    EncoderKind::Convolution => {
                        // Slot bases ascend and attr indices ascend within a
                        // slot, so columns arrive nondecreasing: merging
                        // adjacent equals reproduces the stable triplet sort.
                        for (p, &u) in window.iter().enumerate() {
                            if u == PAD {
                                continue;
                            }
                            let base = (p * d) as u32;
                            let (idx, val) = attrs.row(u);
                            for (&a, &x) in idx.iter().zip(val) {
                                push_merged(&mut indices, &mut values, row_start, base + a, x);
                            }
                        }
                    }
                    EncoderKind::FullyConnected => {
                        scratch.clear();
                        for &u in window {
                            if u == PAD {
                                continue;
                            }
                            let (idx, val) = attrs.row(u);
                            scratch.extend(idx.iter().zip(val).map(|(&a, &x)| (a, x)));
                        }
                        // Stable by column: duplicates stay in slot-encounter
                        // order, matching `from_triplets` exactly.
                        scratch.sort_by_key(|&(a, _)| a);
                        for &(a, x) in &scratch {
                            push_merged(&mut indices, &mut values, row_start, a, x);
                        }
                    }
                }
                indptr.push(indices.len());
            }
            offsets.push(indptr.len() - 1);
        }

        let rows = SparseMatrix::from_csr(total_ctx, cols, indptr, indices, values);
        Self { rows, offsets, attr_dim: d }
    }

    /// Total cached context rows.
    pub fn num_contexts(&self) -> usize {
        self.rows.shape().0
    }

    /// Stored entries across all cached rows.
    pub fn nnz(&self) -> usize {
        self.rows.nnz()
    }

    /// Context row range of node `v` within the cache.
    pub fn row_range(&self, v: NodeId) -> Range<usize> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }

    /// Assembles the full training batch for `nodes`: cached sparse rows
    /// plus the dense attribute targets. Bit-identical to
    /// [`ContextBatch::build`] on the same inputs.
    pub fn batch(&self, graph: &AttributedGraph, nodes: &[NodeId]) -> ContextBatch {
        let mut batch = self.infer_batch(nodes);
        batch.x_target =
            Matrix::from_vec(nodes.len(), self.attr_dim, graph.attrs().gather_dense(nodes));
        batch
    }

    /// Assembles an inference-only batch: same `rb` and `offsets` as
    /// [`ContextRowCache::batch`] but with an empty `x_target` (renewal and
    /// inductive encoding never read the reconstruction targets).
    pub fn infer_batch(&self, nodes: &[NodeId]) -> ContextBatch {
        let ranges: Vec<Range<usize>> = nodes.iter().map(|&v| self.row_range(v)).collect();
        let rb = self.rows.select_row_ranges(&ranges);
        let mut offsets = Vec::with_capacity(nodes.len() + 1);
        offsets.push(0usize);
        let mut total = 0usize;
        for r in &ranges {
            total += r.end - r.start;
            offsets.push(total);
        }
        ContextBatch {
            nodes: nodes.to_vec(),
            rb: Arc::new(rb),
            offsets: Arc::new(offsets),
            x_target: Matrix::zeros(0, self.attr_dim),
        }
    }
}

/// Appends `(col, val)` to the row that started at `row_start`, summing into
/// the previous entry when the column repeats — the on-the-fly equivalent of
/// the stable triplet sort-and-merge.
#[inline]
fn push_merged(
    indices: &mut Vec<u32>,
    values: &mut Vec<f32>,
    row_start: usize,
    col: u32,
    val: f32,
) {
    if indices.len() > row_start && *indices.last().unwrap() == col {
        *values.last_mut().unwrap() += val;
    } else {
        indices.push(col);
        values.push(val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coane_graph::{GraphBuilder, NodeAttributes};
    use coane_walks::ContextsConfig;

    fn fixture() -> (AttributedGraph, ContextSet) {
        let mut b = GraphBuilder::new(3, 3);
        b.add_edges(&[(0, 1), (1, 2)]);
        let g = b
            .with_attrs(NodeAttributes::from_sparse_rows(
                3,
                &[vec![(0, 1.0)], vec![(1, 2.0)], vec![(2, 3.0)]],
            ))
            .build();
        let walks = vec![vec![0, 1, 2], vec![2, 1, 0]];
        let cs = ContextSet::build(
            &walks,
            3,
            &ContextsConfig { context_size: 3, subsample_t: f64::INFINITY, seed: 0 },
        );
        (g, cs)
    }

    #[test]
    fn cached_batch_matches_fresh_build() {
        let (g, cs) = fixture();
        for encoder in [EncoderKind::Convolution, EncoderKind::FullyConnected] {
            let cache = ContextRowCache::build(&g, &cs, encoder);
            for nodes in [vec![1], vec![2, 0], vec![0, 1, 2], vec![1, 1]] {
                let fresh = ContextBatch::build(&g, &cs, &nodes, encoder);
                let cached = cache.batch(&g, &nodes);
                assert_eq!(*cached.rb, *fresh.rb, "{encoder:?} nodes={nodes:?}");
                assert_eq!(cached.offsets, fresh.offsets, "{encoder:?} nodes={nodes:?}");
                assert_eq!(cached.x_target, fresh.x_target, "{encoder:?} nodes={nodes:?}");
                assert_eq!(cached.nodes, fresh.nodes);
            }
        }
    }

    #[test]
    fn infer_batch_skips_targets_only() {
        let (g, cs) = fixture();
        let cache = ContextRowCache::build(&g, &cs, EncoderKind::Convolution);
        let full = cache.batch(&g, &[2, 1]);
        let infer = cache.infer_batch(&[2, 1]);
        assert_eq!(infer.rb, full.rb);
        assert_eq!(infer.offsets, full.offsets);
        assert_eq!(infer.x_target.shape(), (0, 3));
    }

    #[test]
    fn row_ranges_cover_all_contexts() {
        let (g, cs) = fixture();
        let cache = ContextRowCache::build(&g, &cs, EncoderKind::Convolution);
        assert_eq!(cache.num_contexts(), cs.num_contexts());
        let mut covered = 0;
        for v in 0..3u32 {
            let r = cache.row_range(v);
            assert_eq!(r.len(), cs.count(v));
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, cache.num_contexts());
    }

    #[test]
    fn fc_duplicate_columns_match_triplet_order() {
        // Two nodes sharing attribute 0 with different magnitudes: the FC
        // layout sums them; order must match the stable triplet merge.
        let mut b = GraphBuilder::new(2, 2);
        b.add_edge(0, 1, 1.0);
        let g = b
            .with_attrs(NodeAttributes::from_sparse_rows(
                2,
                &[vec![(0, 1.0e-8), (1, 0.5)], vec![(0, 1.0)]],
            ))
            .build();
        let walks = vec![vec![0, 1]];
        let cs = ContextSet::build(
            &walks,
            2,
            &ContextsConfig { context_size: 3, subsample_t: f64::INFINITY, seed: 0 },
        );
        let cache = ContextRowCache::build(&g, &cs, EncoderKind::FullyConnected);
        for nodes in [vec![0u32], vec![1], vec![0, 1]] {
            let fresh = ContextBatch::build(&g, &cs, &nodes, EncoderKind::FullyConnected);
            let cached = cache.batch(&g, &nodes);
            assert_eq!(*cached.rb, *fresh.rb, "nodes={nodes:?}");
        }
    }
}
