//! Epoch-persistent context-row cache with a memory-budget ladder.
//!
//! Contexts are frozen once `prepare()` has run, yet the seed trainer
//! re-derived every batch's sparse operand from triplets (gather + sort)
//! each epoch. This module materializes *all* context rows once, in CSR
//! form and in [`ContextSet`] row order, so assembling a batch collapses to
//! concatenating per-node row ranges — two `memcpy`s per node via
//! [`SparseMatrix::select_row_ranges`], with exact-nnz allocation and no
//! sorting.
//!
//! The cache reproduces [`ContextBatch::build`]'s numbers *bit for bit*:
//! duplicate columns within a row are summed in slot-encounter order, which
//! is exactly the order `SparseMatrix::from_triplets`'s stable sort leaves
//! duplicates in. A proptest in `batch.rs` holds the two builders equal on
//! random graphs for both encoders.
//!
//! ## Memory budget (`CoaneConfig::max_cache_bytes`)
//!
//! At million-node scale the materialized CSR can dominate peak RSS. When a
//! budget is set, [`ContextRowCache::build_budgeted`] walks a fallback
//! ladder (see DESIGN.md §2.12) and picks the *fastest representation that
//! fits*:
//!
//! 1. **Materialized** — the full CSR, when its (conservative) size
//!    estimate fits the budget. Batch assembly is a row-range `memcpy`.
//! 2. **Compressed** — rows stored as a delta+varint byte stream
//!    ([`crate::rowcodec`]), decoded per batch. Typically 3–6× smaller for
//!    binary-attribute graphs.
//! 3. **Rebuild** — rows are not stored at all; each batch rebuilds its
//!    nodes' rows from the (already resident) [`ContextSet`] and attribute
//!    matrix. O(n) resident overhead, most CPU per batch.
//!
//! Every rung produces **bit-identical batches**: all three feed the same
//! row-construction routine, and the codec round-trips f32 bit patterns
//! exactly. Equivalence across rungs and thread counts is locked by
//! `tests/streaming.rs`.

use coane_graph::{AttributedGraph, NodeAttributes, NodeId};
use coane_nn::{Matrix, SparseMatrix};
use coane_walks::{ContextSet, PAD};
use std::ops::Range;
use std::sync::Arc;

use crate::batch::ContextBatch;
use crate::config::EncoderKind;
use crate::rowcodec;

/// Which rung of the budget ladder a cache landed on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheMode {
    /// Full CSR resident (rung 1; also the unbudgeted default).
    Materialized,
    /// Delta+varint compressed rows (rung 2).
    Compressed,
    /// Rows rebuilt per batch from contexts + attributes (rung 3).
    Rebuild,
}

/// Compressed row storage: one contiguous byte stream, indexed per *node*
/// (batch assembly always decodes whole nodes, and a node's rows decode
/// sequentially), so the index costs 8 bytes per node rather than per row.
#[derive(Clone, Debug)]
struct CompressedRows {
    data: Vec<u8>,
    /// Byte offset of each node's first row (`n + 1` entries).
    node_offsets: Vec<usize>,
}

/// Rung-3 source: enough state to rebuild any node's rows on demand. The
/// context set is shared (`Arc`) with the trainer's `Prepared` state; the
/// attribute matrix is cloned so `infer_batch` needs no graph borrow.
#[derive(Clone, Debug)]
struct RebuildSource {
    contexts: Arc<ContextSet>,
    attrs: NodeAttributes,
    encoder: EncoderKind,
}

#[derive(Clone, Debug)]
enum RowStore {
    Materialized(SparseMatrix),
    Compressed(CompressedRows),
    Rebuild(RebuildSource),
}

/// All context rows of a graph, materialized (or budget-compressed) once
/// per training run.
#[derive(Clone, Debug)]
pub struct ContextRowCache {
    store: RowStore,
    /// Per-node context row ranges (`len = n + 1`), mirroring the context
    /// set's grouping so the cache can be used without re-borrowing it.
    offsets: Vec<usize>,
    attr_dim: usize,
    /// Row width (`c·d` conv, `d` fully-connected).
    cols: usize,
    /// Total nnz across all rows (identical for every rung).
    nnz: usize,
    /// Bytes held resident by the chosen representation.
    resident_bytes: usize,
}

/// Appends every context row of node `v` to a CSR-in-progress. All three
/// cache rungs and the budgeted builder call this one routine, so their
/// rows cannot differ by construction.
#[allow(clippy::too_many_arguments)] // the CSR triple + scratch are one logical output
fn append_node_rows(
    attrs: &NodeAttributes,
    d: usize,
    encoder: EncoderKind,
    contexts: &ContextSet,
    v: NodeId,
    indptr: &mut Vec<usize>,
    indices: &mut Vec<u32>,
    values: &mut Vec<f32>,
    scratch: &mut Vec<(u32, f32)>,
) {
    for window in contexts.contexts_of(v) {
        let row_start = indices.len();
        match encoder {
            EncoderKind::Convolution => {
                // Slot bases ascend and attr indices ascend within a
                // slot, so columns arrive nondecreasing: merging
                // adjacent equals reproduces the stable triplet sort.
                for (p, &u) in window.iter().enumerate() {
                    if u == PAD {
                        continue;
                    }
                    let base = (p * d) as u32;
                    let (idx, val) = attrs.row(u);
                    for (&a, &x) in idx.iter().zip(val) {
                        push_merged(indices, values, row_start, base + a, x);
                    }
                }
            }
            EncoderKind::FullyConnected => {
                scratch.clear();
                for &u in window {
                    if u == PAD {
                        continue;
                    }
                    let (idx, val) = attrs.row(u);
                    scratch.extend(idx.iter().zip(val).map(|(&a, &x)| (a, x)));
                }
                // Stable by column: duplicates stay in slot-encounter
                // order, matching `from_triplets` exactly.
                scratch.sort_by_key(|&(a, _)| a);
                for &(a, x) in scratch.iter() {
                    push_merged(indices, values, row_start, a, x);
                }
            }
        }
        indptr.push(indices.len());
    }
}

impl ContextRowCache {
    /// Materializes every context row for `contexts` under `encoder` (the
    /// unbudgeted path: always rung 1).
    pub fn build(graph: &AttributedGraph, contexts: &ContextSet, encoder: EncoderKind) -> Self {
        let attrs = graph.attrs();
        let d = graph.attr_dim();
        let cols = Self::row_width(contexts, encoder, d);
        let n = contexts.num_nodes();
        let total_ctx = contexts.num_contexts();
        let nnz_bound = Self::nnz_bound(attrs, contexts);

        let mut indptr = Vec::with_capacity(total_ctx + 1);
        indptr.push(0usize);
        let mut indices: Vec<u32> = Vec::with_capacity(nnz_bound);
        let mut values: Vec<f32> = Vec::with_capacity(nnz_bound);
        let mut scratch: Vec<(u32, f32)> = Vec::new();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for v in 0..n as NodeId {
            append_node_rows(
                attrs,
                d,
                encoder,
                contexts,
                v,
                &mut indptr,
                &mut indices,
                &mut values,
                &mut scratch,
            );
            offsets.push(indptr.len() - 1);
        }

        let nnz = indices.len();
        let resident_bytes = Self::csr_bytes(nnz, total_ctx, n);
        let rows = SparseMatrix::from_csr(total_ctx, cols, indptr, indices, values);
        Self {
            store: RowStore::Materialized(rows),
            offsets,
            attr_dim: d,
            cols,
            nnz,
            resident_bytes,
        }
    }

    /// Budget-aware build: walks the fallback ladder (materialized →
    /// compressed → rebuild) and returns the fastest representation whose
    /// resident size fits `max_bytes`. Batches from every rung are
    /// bit-identical to the unbudgeted cache's.
    ///
    /// Sizing is honest-conservative: the materialized estimate uses the
    /// nnz *upper bound* (duplicate merging only shrinks it), and the
    /// compressed representation is measured exactly after encoding — so a
    /// chosen rung's reported [`ContextRowCache::resident_bytes`] never
    /// understates the allocation it guards.
    ///
    /// # Panics
    /// Panics if `max_bytes` is zero (use [`ContextRowCache::build`] for an
    /// unbounded cache).
    pub fn build_budgeted(
        graph: &AttributedGraph,
        contexts: &Arc<ContextSet>,
        encoder: EncoderKind,
        max_bytes: usize,
    ) -> Self {
        assert!(max_bytes > 0, "max_bytes must be positive; unbudgeted builds use build()");
        let attrs = graph.attrs();
        let d = graph.attr_dim();
        let n = contexts.num_nodes();
        let total_ctx = contexts.num_contexts();
        let nnz_bound = Self::nnz_bound(attrs, contexts);

        // Rung 1: full CSR, if the conservative estimate fits.
        if Self::csr_bytes(nnz_bound, total_ctx, n) <= max_bytes {
            return Self::build(graph, contexts, encoder);
        }

        // Rung 2: encode every row through the delta+varint codec,
        // streaming node by node (peak transient state is one node's rows).
        let cols = Self::row_width(contexts, encoder, d);
        let mut data: Vec<u8> = Vec::new();
        let mut node_offsets = Vec::with_capacity(n + 1);
        node_offsets.push(0usize);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut nnz = 0usize;
        let (mut indptr, mut indices, mut values) = (Vec::new(), Vec::new(), Vec::new());
        let mut scratch: Vec<(u32, f32)> = Vec::new();
        for v in 0..n as NodeId {
            indptr.clear();
            indptr.push(0usize);
            indices.clear();
            values.clear();
            append_node_rows(
                attrs,
                d,
                encoder,
                contexts,
                v,
                &mut indptr,
                &mut indices,
                &mut values,
                &mut scratch,
            );
            for r in 0..indptr.len() - 1 {
                let (s, e) = (indptr[r], indptr[r + 1]);
                rowcodec::encode_row(&indices[s..e], &values[s..e], &mut data);
            }
            nnz += indices.len();
            node_offsets.push(data.len());
            offsets.push(offsets.last().unwrap() + indptr.len() - 1);
        }
        let compressed_bytes = data.len() + (node_offsets.len() + offsets.len()) * 8;
        if compressed_bytes <= max_bytes {
            return Self {
                store: RowStore::Compressed(CompressedRows { data, node_offsets }),
                offsets,
                attr_dim: d,
                cols,
                nnz,
                resident_bytes: compressed_bytes,
            };
        }

        // Rung 3: store nothing row-shaped; rebuild per batch. The context
        // set is shared with the trainer, so only the attribute clone and
        // the offsets are newly resident.
        let resident_bytes = offsets.len() * 8 + attrs.nnz() * 8 + (attrs.num_rows() + 1) * 8;
        let source =
            RebuildSource { contexts: Arc::clone(contexts), attrs: attrs.clone(), encoder };
        Self { store: RowStore::Rebuild(source), offsets, attr_dim: d, cols, nnz, resident_bytes }
    }

    fn row_width(contexts: &ContextSet, encoder: EncoderKind, d: usize) -> usize {
        match encoder {
            EncoderKind::Convolution => contexts.context_size() * d,
            EncoderKind::FullyConnected => d,
        }
    }

    /// Exact upper bound on nnz: every non-PAD slot contributes its attr
    /// row once (duplicate-column merging can only shrink it; for the
    /// convolutional layout with duplicate-free attr rows it is exact).
    fn nnz_bound(attrs: &NodeAttributes, contexts: &ContextSet) -> usize {
        let mut bound = 0usize;
        for v in 0..contexts.num_nodes() as NodeId {
            for &u in contexts.slots_of(v) {
                if u != PAD {
                    bound += attrs.row(u).0.len();
                }
            }
        }
        bound
    }

    /// Resident size of a CSR with `nnz` entries, `rows` rows and `n` node
    /// offsets (u32 index + f32 value per entry, usize per row/node).
    fn csr_bytes(nnz: usize, rows: usize, n: usize) -> usize {
        nnz * 8 + (rows + 1) * 8 + (n + 1) * 8
    }

    /// Which representation the cache holds.
    pub fn mode(&self) -> CacheMode {
        match self.store {
            RowStore::Materialized(_) => CacheMode::Materialized,
            RowStore::Compressed(_) => CacheMode::Compressed,
            RowStore::Rebuild(_) => CacheMode::Rebuild,
        }
    }

    /// Bytes held resident by the chosen representation (≥ the actual
    /// allocation it accounts for; see [`ContextRowCache::build_budgeted`]).
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Total cached context rows.
    pub fn num_contexts(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// Stored entries across all cached rows (same for every rung).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Context row range of node `v` within the cache.
    pub fn row_range(&self, v: NodeId) -> Range<usize> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }

    /// Assembles the full training batch for `nodes`: cached sparse rows
    /// plus the dense attribute targets. Bit-identical to
    /// [`ContextBatch::build`] on the same inputs.
    pub fn batch(&self, graph: &AttributedGraph, nodes: &[NodeId]) -> ContextBatch {
        let mut batch = self.infer_batch(nodes);
        batch.x_target =
            Matrix::from_vec(nodes.len(), self.attr_dim, graph.attrs().gather_dense(nodes));
        batch
    }

    /// Assembles an inference-only batch: same `rb` and `offsets` as
    /// [`ContextRowCache::batch`] but with an empty `x_target` (renewal and
    /// inductive encoding never read the reconstruction targets).
    pub fn infer_batch(&self, nodes: &[NodeId]) -> ContextBatch {
        let rb = match &self.store {
            RowStore::Materialized(rows) => {
                let ranges: Vec<Range<usize>> = nodes.iter().map(|&v| self.row_range(v)).collect();
                rows.select_row_ranges(&ranges)
            }
            RowStore::Compressed(cr) => self.decode_nodes(cr, nodes),
            RowStore::Rebuild(src) => self.rebuild_nodes(src, nodes),
        };
        let mut offsets = Vec::with_capacity(nodes.len() + 1);
        offsets.push(0usize);
        let mut total = 0usize;
        for &v in nodes {
            total += self.row_range(v).len();
            offsets.push(total);
        }
        ContextBatch {
            nodes: nodes.to_vec(),
            rb: Arc::new(rb),
            offsets: Arc::new(offsets),
            x_target: Matrix::zeros(0, self.attr_dim),
        }
    }

    /// Decodes the concatenated rows of `nodes` out of the compressed store.
    fn decode_nodes(&self, cr: &CompressedRows, nodes: &[NodeId]) -> SparseMatrix {
        let total_rows: usize = nodes.iter().map(|&v| self.row_range(v).len()).sum();
        let mut indptr = Vec::with_capacity(total_rows + 1);
        indptr.push(0usize);
        let mut indices: Vec<u32> = Vec::new();
        let mut values: Vec<f32> = Vec::new();
        for &v in nodes {
            let mut pos = cr.node_offsets[v as usize];
            for _ in self.row_range(v) {
                rowcodec::decode_row(&cr.data, &mut pos, &mut indices, &mut values);
                indptr.push(indices.len());
            }
            debug_assert_eq!(pos, cr.node_offsets[v as usize + 1], "row stream misaligned");
        }
        SparseMatrix::from_csr(total_rows, self.cols, indptr, indices, values)
    }

    /// Rebuilds the concatenated rows of `nodes` from contexts + attributes.
    fn rebuild_nodes(&self, src: &RebuildSource, nodes: &[NodeId]) -> SparseMatrix {
        let total_rows: usize = nodes.iter().map(|&v| self.row_range(v).len()).sum();
        let mut indptr = Vec::with_capacity(total_rows + 1);
        indptr.push(0usize);
        let mut indices: Vec<u32> = Vec::new();
        let mut values: Vec<f32> = Vec::new();
        let mut scratch: Vec<(u32, f32)> = Vec::new();
        for &v in nodes {
            append_node_rows(
                &src.attrs,
                self.attr_dim,
                src.encoder,
                &src.contexts,
                v,
                &mut indptr,
                &mut indices,
                &mut values,
                &mut scratch,
            );
        }
        SparseMatrix::from_csr(total_rows, self.cols, indptr, indices, values)
    }
}

/// Appends `(col, val)` to the row that started at `row_start`, summing into
/// the previous entry when the column repeats — the on-the-fly equivalent of
/// the stable triplet sort-and-merge.
#[inline]
fn push_merged(
    indices: &mut Vec<u32>,
    values: &mut Vec<f32>,
    row_start: usize,
    col: u32,
    val: f32,
) {
    if indices.len() > row_start && *indices.last().unwrap() == col {
        *values.last_mut().unwrap() += val;
    } else {
        indices.push(col);
        values.push(val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coane_graph::{GraphBuilder, NodeAttributes};
    use coane_walks::ContextsConfig;

    fn fixture() -> (AttributedGraph, ContextSet) {
        let mut b = GraphBuilder::new(3, 3);
        b.add_edges(&[(0, 1), (1, 2)]);
        let g = b
            .with_attrs(NodeAttributes::from_sparse_rows(
                3,
                &[vec![(0, 1.0)], vec![(1, 2.0)], vec![(2, 3.0)]],
            ))
            .build();
        let walks = vec![vec![0, 1, 2], vec![2, 1, 0]];
        let cs = ContextSet::build(
            &walks,
            3,
            &ContextsConfig { context_size: 3, subsample_t: f64::INFINITY, seed: 0 },
        );
        (g, cs)
    }

    #[test]
    fn cached_batch_matches_fresh_build() {
        let (g, cs) = fixture();
        for encoder in [EncoderKind::Convolution, EncoderKind::FullyConnected] {
            let cache = ContextRowCache::build(&g, &cs, encoder);
            for nodes in [vec![1], vec![2, 0], vec![0, 1, 2], vec![1, 1]] {
                let fresh = ContextBatch::build(&g, &cs, &nodes, encoder);
                let cached = cache.batch(&g, &nodes);
                assert_eq!(*cached.rb, *fresh.rb, "{encoder:?} nodes={nodes:?}");
                assert_eq!(cached.offsets, fresh.offsets, "{encoder:?} nodes={nodes:?}");
                assert_eq!(cached.x_target, fresh.x_target, "{encoder:?} nodes={nodes:?}");
                assert_eq!(cached.nodes, fresh.nodes);
            }
        }
    }

    #[test]
    fn infer_batch_skips_targets_only() {
        let (g, cs) = fixture();
        let cache = ContextRowCache::build(&g, &cs, EncoderKind::Convolution);
        let full = cache.batch(&g, &[2, 1]);
        let infer = cache.infer_batch(&[2, 1]);
        assert_eq!(infer.rb, full.rb);
        assert_eq!(infer.offsets, full.offsets);
        assert_eq!(infer.x_target.shape(), (0, 3));
    }

    #[test]
    fn row_ranges_cover_all_contexts() {
        let (g, cs) = fixture();
        let cache = ContextRowCache::build(&g, &cs, EncoderKind::Convolution);
        assert_eq!(cache.num_contexts(), cs.num_contexts());
        let mut covered = 0;
        for v in 0..3u32 {
            let r = cache.row_range(v);
            assert_eq!(r.len(), cs.count(v));
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, cache.num_contexts());
    }

    #[test]
    fn fc_duplicate_columns_match_triplet_order() {
        // Two nodes sharing attribute 0 with different magnitudes: the FC
        // layout sums them; order must match the stable triplet merge.
        let mut b = GraphBuilder::new(2, 2);
        b.add_edge(0, 1, 1.0);
        let g = b
            .with_attrs(NodeAttributes::from_sparse_rows(
                2,
                &[vec![(0, 1.0e-8), (1, 0.5)], vec![(0, 1.0)]],
            ))
            .build();
        let walks = vec![vec![0, 1]];
        let cs = ContextSet::build(
            &walks,
            2,
            &ContextsConfig { context_size: 3, subsample_t: f64::INFINITY, seed: 0 },
        );
        let cache = ContextRowCache::build(&g, &cs, EncoderKind::FullyConnected);
        for nodes in [vec![0u32], vec![1], vec![0, 1]] {
            let fresh = ContextBatch::build(&g, &cs, &nodes, EncoderKind::FullyConnected);
            let cached = cache.batch(&g, &nodes);
            assert_eq!(*cached.rb, *fresh.rb, "nodes={nodes:?}");
        }
    }

    #[test]
    fn budget_ladder_picks_every_rung_and_stays_bit_identical() {
        let (g, cs) = fixture();
        let cs = Arc::new(cs);
        for encoder in [EncoderKind::Convolution, EncoderKind::FullyConnected] {
            let unbounded = ContextRowCache::build(&g, &cs, encoder);
            // Huge budget → materialized; mid budget → compressed; tiny →
            // rebuild. The fixture's CSR is ~hundreds of bytes.
            let cases = [
                (1 << 20, CacheMode::Materialized),
                (unbounded.resident_bytes() - 1, CacheMode::Compressed),
                (1, CacheMode::Rebuild),
            ];
            for (budget, want_mode) in cases {
                let cache = ContextRowCache::build_budgeted(&g, &cs, encoder, budget);
                assert_eq!(cache.mode(), want_mode, "budget={budget} {encoder:?}");
                assert_eq!(cache.nnz(), unbounded.nnz());
                assert_eq!(cache.num_contexts(), unbounded.num_contexts());
                if want_mode != CacheMode::Rebuild {
                    assert!(
                        cache.resident_bytes() <= budget,
                        "{want_mode:?} over budget: {} > {budget}",
                        cache.resident_bytes()
                    );
                }
                for nodes in [vec![1u32], vec![2, 0], vec![0, 1, 2], vec![1, 1]] {
                    let a = cache.batch(&g, &nodes);
                    let b = unbounded.batch(&g, &nodes);
                    assert_eq!(*a.rb, *b.rb, "{want_mode:?} {encoder:?} nodes={nodes:?}");
                    assert_eq!(a.offsets, b.offsets);
                    assert_eq!(a.x_target, b.x_target);
                }
            }
        }
    }

    #[test]
    fn compressed_cache_reports_no_less_than_its_allocation() {
        let (g, cs) = fixture();
        let cs = Arc::new(cs);
        let cache = ContextRowCache::build_budgeted(&g, &cs, EncoderKind::Convolution, 200);
        if cache.mode() == CacheMode::Compressed {
            assert!(cache.resident_bytes() <= 200);
        }
        // Whatever rung was chosen, resident_bytes is positive and sane.
        assert!(cache.resident_bytes() > 0);
    }
}
