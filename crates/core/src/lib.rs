//! # coane-core
//!
//! The CoANE model — *Context Co-occurrence-aware Attributed Network
//! Embedding* (Hsieh & Li, ICDE 2022) — implemented from scratch on the
//! `coane-nn` autograd engine.
//!
//! Pipeline (Fig. 1 of the paper):
//!
//! 1. **Generating structural contexts** (`coane-walks`): `r` random walks of
//!    length `l` per node; sliding windows of size `c` with padding and
//!    subsampling; co-occurrence matrices `D`, `D¹`.
//! 2. **Modeling context co-occurrence** ([`model`]): each context's
//!    attribute-context matrix `R_vi ∈ R^{c×d}` is convolved by `d'` filters
//!    `Θ_j ∈ R^{c×d}` (a 1-D CNN with receptive field = stride = `c`,
//!    treating each attribute as a channel), then 1-D average pooling over
//!    the node's contexts yields `z_v ∈ R^{d'}`.
//! 3. **Three-way objective** ([`loss`], §3.3): positive graph likelihood on
//!    top-`k_p` entries of `D̃ = Dᴺ + D¹`, contextually negative sampling with
//!    strength `a`, and attribute reconstruction through a 2-hidden-layer
//!    ReLU MLP weighted by `γ`.
//!
//! The [`trainer::Coane`] type runs Algorithm 1 (batch updating with
//! per-epoch embedding renewal). [`config::Ablation`] switches reproduce all
//! eight objective variants of Fig. 6 plus the fully-connected encoder of
//! Fig. 6a and the one-hop-context variant of Fig. 5.
//!
//! ```no_run
//! use coane_core::{Coane, CoaneConfig};
//! use coane_datasets::Preset;
//!
//! let (graph, _) = Preset::Cora.generate_scaled(0.1, 42);
//! let config = CoaneConfig { epochs: 3, ..Default::default() };
//! let embedding = Coane::new(config).fit(&graph);
//! assert_eq!(embedding.rows(), graph.num_nodes());
//! ```

pub mod batch;
pub mod cache;
pub mod checkpoint;
pub mod config;
pub mod inductive;
pub mod loss;
pub mod model;
pub mod persist;
pub mod rowcodec;
pub mod telemetry;
pub mod trainer;

pub use cache::{CacheMode, ContextRowCache};
pub use checkpoint::CheckpointConfig;
pub use coane_error::{CoaneError, CoaneResult};
pub use coane_obs::Obs;
pub use config::{
    Ablation, CoaneConfig, ContextSource, EncoderKind, NegativeLossKind, PositiveLossKind,
};
pub use inductive::{embed_nodes, embed_nodes_obs};
pub use model::CoaneModel;
pub use persist::{load_model, save_model};
pub use telemetry::{CheckpointRecord, EpochRecord, RecoveryRecord, ResumeRecord};
pub use trainer::{Coane, TrainStats};
