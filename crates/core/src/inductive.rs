//! Inductive inference: embedding nodes that were unseen during training.
//!
//! Unlike lookup-table methods (DeepWalk, LINE, ASNE's id embeddings), the
//! CoANE encoder is a *function* of a node's contexts and their attributes —
//! nothing about it is tied to node identity. Given a trained filter bank,
//! any node that exists in some graph (with attributes and at least one
//! edge) can be embedded by sampling fresh walks from it and running the
//! same convolution + pooling. This mirrors the inductive capability the
//! paper credits GraphSAGE with (§2.3) and extends it to CoANE.

use coane_graph::{AttributedGraph, NodeId};
use coane_nn::Matrix;
use coane_walks::{ContextSet, ContextsConfig, WalkConfig, Walker};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::cache::ContextRowCache;
use crate::config::CoaneConfig;
use crate::model::CoaneModel;

/// Embeds `nodes` of `graph` with a trained `model`, sampling
/// `config.walks_per_node` fresh walks per node. The graph may differ from
/// the training graph (new nodes, new edges) as long as its attribute
/// dimensionality matches the model.
///
/// Returns a `(nodes.len() × d')` matrix in the order of `nodes`.
///
/// # Panics
/// Panics if the graph's attribute dimensionality differs from the one the
/// model was constructed with.
pub fn embed_nodes(
    model: &CoaneModel,
    config: &CoaneConfig,
    graph: &AttributedGraph,
    nodes: &[NodeId],
) -> Matrix {
    embed_nodes_obs(model, config, graph, nodes, &coane_obs::Obs::disabled())
}

/// [`embed_nodes`] with phase telemetry: walk sampling, context extraction
/// and the no-grad forward are timed under an `infer` scope, and the number
/// of embedded nodes is counted. Telemetry is observation-only — the output
/// is bit-identical for any `obs` state.
///
/// # Panics
/// Panics if the graph's attribute dimensionality differs from the one the
/// model was constructed with.
pub fn embed_nodes_obs(
    model: &CoaneModel,
    config: &CoaneConfig,
    graph: &AttributedGraph,
    nodes: &[NodeId],
    obs: &coane_obs::Obs,
) -> Matrix {
    let _scope = obs.scope("infer");
    obs.add("infer/nodes", nodes.len() as u64);
    let walker = Walker::new(
        graph,
        WalkConfig {
            walks_per_node: config.walks_per_node.max(1),
            walk_length: config.walk_length,
            p: 1.0,
            q: 1.0,
            seed: config.seed ^ 0x1_0d0c,
        },
    );
    // Fresh walks from the target nodes only.
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x1_0d0d);
    let mut walks = Vec::with_capacity(nodes.len() * config.walks_per_node.max(1));
    for &v in nodes {
        for _ in 0..config.walks_per_node.max(1) {
            walks.push(walker.walk_from(v, &mut rng));
        }
    }
    // No subsampling at inference: every context of the target is welcome.
    let contexts = ContextSet::build_obs(
        &walks,
        graph.num_nodes(),
        &ContextsConfig {
            context_size: config.context_size,
            subsample_t: f64::INFINITY,
            seed: config.seed,
        },
        obs,
    );
    // No-grad chunked inference off the context-row cache: each requested
    // node's embedding depends only on its own context rows, so the
    // `infer_batch_size` chunking and the thread count are pure throughput
    // knobs (bit-identical output either way).
    let cache = ContextRowCache::build(graph, &contexts, config.encoder);
    let d = model.embed_dim();
    let mut out = Matrix::zeros(nodes.len(), d);
    let chunk_nodes = config.infer_batch_size.max(1);
    coane_nn::pool::parallel_chunks(out.as_mut_slice(), chunk_nodes * d, |start, slab| {
        let k0 = start / d;
        let chunk = &nodes[k0..k0 + slab.len() / d];
        let z = model.encode_nograd(&cache.infer_batch(chunk));
        slab.copy_from_slice(z.as_slice());
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::Coane;
    use coane_datasets::{social_circle_graph, SocialCircleConfig};
    use coane_graph::{GraphBuilder, NodeAttributes};

    fn cosine(a: &[f32], b: &[f32]) -> f64 {
        coane_nn::sim::cosine(a, b) as f64
    }

    #[test]
    fn unseen_node_lands_near_its_community() {
        // Train on a 2-community graph; then extend the graph with one new
        // node wired into community 0 and carrying community-0 attributes.
        let cfg = SocialCircleConfig {
            num_nodes: 120,
            num_communities: 2,
            circles_per_community: 2,
            attr_dim: 60,
            num_edges: 400,
            mixing: 0.08,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let (graph, asg) = social_circle_graph(&cfg, &mut rng);
        let coane_cfg = CoaneConfig {
            embed_dim: 16,
            context_size: 3,
            walk_length: 20,
            epochs: 10,
            batch_size: 40,
            decoder_hidden: (32, 32),
            ..Default::default()
        };
        let (z_train, model, _) = Coane::new(coane_cfg.clone()).fit_with_model(&graph);

        // Extend the graph: new node n attached to 8 community-0 nodes,
        // copying a community-0 member's attributes.
        let n = graph.num_nodes();
        let comm0: Vec<u32> = (0..n as u32).filter(|&v| asg.community[v as usize] == 0).collect();
        let donor = comm0[0];
        let mut b = GraphBuilder::new(n + 1, graph.attr_dim());
        for (u, v, w) in graph.edges() {
            b.add_edge(u, v, w);
        }
        for &u in comm0.iter().take(8) {
            b.add_edge(n as u32, u, 1.0);
        }
        let mut rows: Vec<Vec<(u32, f32)>> = (0..n as u32)
            .map(|v| {
                let (idx, val) = graph.attrs().row(v);
                idx.iter().copied().zip(val.iter().copied()).collect()
            })
            .collect();
        let (didx, dval) = graph.attrs().row(donor);
        rows.push(didx.iter().copied().zip(dval.iter().copied()).collect());
        let extended =
            b.with_attrs(NodeAttributes::from_sparse_rows(graph.attr_dim(), &rows)).build();

        let z_new = embed_nodes(&model, &coane_cfg, &extended, &[n as u32]);
        assert_eq!(z_new.shape(), (1, 16));
        z_new.assert_finite("inductive embedding");

        // Compare mean cosine to each community's trained embeddings.
        let mean_cos = |comm: u32| -> f64 {
            let members: Vec<usize> = (0..n).filter(|&v| asg.community[v] == comm).collect();
            members.iter().map(|&v| cosine(z_new.row(0), z_train.row(v))).sum::<f64>()
                / members.len() as f64
        };
        let c0 = mean_cos(0);
        let c1 = mean_cos(1);
        assert!(c0 > c1, "new node closer to wrong community: {c0} vs {c1}");
    }

    #[test]
    fn embeds_training_nodes_consistently() {
        // Inductively re-embedding training nodes should correlate with the
        // trained embeddings (fresh walks → not identical, but aligned).
        let cfg = SocialCircleConfig {
            num_nodes: 90,
            num_communities: 3,
            attr_dim: 60,
            num_edges: 300,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (graph, _) = social_circle_graph(&cfg, &mut rng);
        let coane_cfg = CoaneConfig {
            embed_dim: 16,
            context_size: 3,
            walk_length: 20,
            epochs: 4,
            batch_size: 30,
            decoder_hidden: (32, 32),
            ..Default::default()
        };
        let (z_train, model, _) = Coane::new(coane_cfg.clone()).fit_with_model(&graph);
        let probe: Vec<u32> = (0..10).collect();
        let z_ind = embed_nodes(&model, &coane_cfg, &graph, &probe);
        for (k, &v) in probe.iter().enumerate() {
            let c = cosine(z_ind.row(k), z_train.row(v as usize));
            assert!(c > 0.5, "node {v}: inductive vs trained cosine {c}");
        }
    }
}
