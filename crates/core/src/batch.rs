//! Batch assembly: turning a set of nodes and their contexts into the sparse
//! attribute-context operand of the convolution.
//!
//! Each context of a batch node becomes one sparse row. For the
//! convolutional encoder the row lives in `R^{c·d}` — the flattened
//! attribute-context matrix `vec(R_vi)`, where slot position `p` occupies
//! columns `p·d..(p+1)·d` (PAD slots contribute nothing, i.e. zero padding).
//! For the fully-connected control the positions are collapsed onto `R^d`.
//! The convolution `Θᵀ vec(R_vi)` then becomes a sparse–dense matmul, which
//! keeps memory proportional to the number of non-zero attributes rather
//! than `c·d` per context.

use coane_graph::{AttributedGraph, NodeId};
use coane_nn::{Matrix, SparseMatrix};
use coane_walks::{ContextSet, Walk, PAD};
use std::sync::Arc;

use crate::config::EncoderKind;

/// A training/inference batch: the sparse context operand plus pooling
/// offsets and dense attribute targets.
///
/// The sparse operand and offsets are `Arc`-shared so (a) attaching them to
/// a tape costs a refcount instead of a deep copy and (b) batches assembled
/// on the prefetch pipeline's producer thread are `Send`.
#[derive(Clone, Debug)]
pub struct ContextBatch {
    /// Batch nodes in order.
    pub nodes: Vec<NodeId>,
    /// Sparse context rows: `(total contexts in batch) × (c·d)` for the
    /// convolutional encoder, `× d` for the fully-connected one.
    pub rb: Arc<SparseMatrix>,
    /// Segment offsets per batch node (`len = nodes.len() + 1`): node `k`'s
    /// contexts occupy rows `offsets[k]..offsets[k+1]` of `rb`.
    pub offsets: Arc<Vec<usize>>,
    /// Dense attribute targets `(nodes.len() × d)` for the reconstruction
    /// loss.
    pub x_target: Matrix,
}

impl ContextBatch {
    /// Assembles the batch for `nodes` from scratch (triplet gather + sort).
    ///
    /// This is the *reference* builder: the hot paths go through
    /// [`crate::cache::ContextRowCache`], which must reproduce this result
    /// bit for bit (property-tested below).
    pub fn build(
        graph: &AttributedGraph,
        contexts: &ContextSet,
        nodes: &[NodeId],
        encoder: EncoderKind,
    ) -> Self {
        let d = graph.attr_dim();
        let c = contexts.context_size();
        let cols = match encoder {
            EncoderKind::Convolution => c * d,
            EncoderKind::FullyConnected => d,
        };
        let mut offsets = Vec::with_capacity(nodes.len() + 1);
        offsets.push(0usize);
        let total_ctx: usize = nodes.iter().map(|&v| contexts.count(v)).sum();
        // Exact triplet count: one per stored attribute entry per non-PAD
        // slot (merging can only shrink the final matrix below this).
        let total_nnz: usize = nodes
            .iter()
            .flat_map(|&v| contexts.slots_of(v))
            .filter(|&&u| u != PAD)
            .map(|&u| graph.attrs().row(u).0.len())
            .sum();
        let mut triplets: Vec<(usize, usize, f32)> = Vec::with_capacity(total_nnz);
        let mut row = 0usize;
        for &v in nodes {
            for window in contexts.contexts_of(v) {
                for (p, &u) in window.iter().enumerate() {
                    if u == PAD {
                        continue; // zero padding
                    }
                    let base = match encoder {
                        EncoderKind::Convolution => p * d,
                        EncoderKind::FullyConnected => 0,
                    };
                    let (idx, val) = graph.attrs().row(u);
                    for (&a, &x) in idx.iter().zip(val) {
                        triplets.push((row, base + a as usize, x));
                    }
                }
                row += 1;
            }
            offsets.push(row);
        }
        let rb = Arc::new(SparseMatrix::from_triplets(total_ctx, cols, triplets));
        let x_target = Matrix::from_vec(nodes.len(), d, graph.attrs().gather_dense(nodes));
        Self { nodes: nodes.to_vec(), rb, offsets: Arc::new(offsets), x_target }
    }

    /// Total contexts in the batch.
    pub fn num_contexts(&self) -> usize {
        *self.offsets.last().unwrap()
    }
}

/// Pseudo-walks for the [`crate::config::ContextSource::FirstHop`] control:
/// one two-node "walk" `[v, u]` per directed edge, so the only structural
/// information available to the model is the immediate neighbourhood
/// (Fig. 5b / Fig. 6a's "first-hop neighbors" case).
pub fn first_hop_walks(graph: &AttributedGraph) -> Vec<Walk> {
    let mut walks = Vec::with_capacity(graph.num_edges() * 2);
    for v in 0..graph.num_nodes() as NodeId {
        if graph.degree(v) == 0 {
            walks.push(vec![v]);
            continue;
        }
        for &u in graph.neighbors_of(v) {
            walks.push(vec![v, u]);
        }
    }
    walks
}

#[cfg(test)]
mod tests {
    use super::*;
    use coane_graph::{GraphBuilder, NodeAttributes};
    use coane_walks::ContextsConfig;

    fn fixture() -> (AttributedGraph, ContextSet) {
        // path 0-1-2, attrs: node i has attribute i with value i+1
        let mut b = GraphBuilder::new(3, 3);
        b.add_edges(&[(0, 1), (1, 2)]);
        let g = b
            .with_attrs(NodeAttributes::from_sparse_rows(
                3,
                &[vec![(0, 1.0)], vec![(1, 2.0)], vec![(2, 3.0)]],
            ))
            .build();
        let walks = vec![vec![0, 1, 2]];
        let cs = ContextSet::build(
            &walks,
            3,
            &ContextsConfig { context_size: 3, subsample_t: f64::INFINITY, seed: 0 },
        );
        (g, cs)
    }

    #[test]
    fn conv_rows_encode_positions() {
        let (g, cs) = fixture();
        // Context of node 1 is [0, 1, 2]; with c=3, d=3 the row has
        // attr 0 (val 1) at column 0·3+0, attr 1 (val 2) at 1·3+1,
        // attr 2 (val 3) at 2·3+2.
        let batch = ContextBatch::build(&g, &cs, &[1], EncoderKind::Convolution);
        assert_eq!(batch.rb.shape(), (1, 9));
        let dense = batch.rb.to_dense();
        assert_eq!(dense.row(0), &[1.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn fc_rows_collapse_positions() {
        let (g, cs) = fixture();
        let batch = ContextBatch::build(&g, &cs, &[1], EncoderKind::FullyConnected);
        assert_eq!(batch.rb.shape(), (1, 3));
        assert_eq!(batch.rb.to_dense().row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn pad_slots_are_zero() {
        let (g, cs) = fixture();
        // Context of node 0 is [PAD, 0, 1]: position 0 contributes nothing.
        let batch = ContextBatch::build(&g, &cs, &[0], EncoderKind::Convolution);
        let dense = batch.rb.to_dense();
        assert_eq!(&dense.row(0)[0..3], &[0.0, 0.0, 0.0]);
        assert_eq!(dense.row(0)[3], 1.0); // node 0's attr at midst position
        assert_eq!(dense.row(0)[7], 2.0); // node 1's attr at position 2
    }

    #[test]
    fn offsets_and_targets() {
        let (g, cs) = fixture();
        let batch = ContextBatch::build(&g, &cs, &[2, 0], EncoderKind::Convolution);
        assert_eq!(*batch.offsets, vec![0, 1, 2]);
        assert_eq!(batch.num_contexts(), 2);
        assert_eq!(batch.x_target.shape(), (2, 3));
        assert_eq!(batch.x_target.row(0), &[0.0, 0.0, 3.0]);
        assert_eq!(batch.x_target.row(1), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn node_without_contexts_gets_empty_segment() {
        let (g, _) = fixture();
        let cs = ContextSet::build(
            &[vec![0, 1]], // node 2 absent
            3,
            &ContextsConfig { context_size: 3, subsample_t: f64::INFINITY, seed: 0 },
        );
        let batch = ContextBatch::build(&g, &cs, &[2, 1], EncoderKind::Convolution);
        assert_eq!(*batch.offsets, vec![0, 0, 1]);
    }

    #[test]
    fn first_hop_walks_cover_edges() {
        let (g, _) = fixture();
        let walks = first_hop_walks(&g);
        assert_eq!(walks.len(), 4); // 2 undirected edges × 2 directions
        for w in &walks {
            assert_eq!(w.len(), 2);
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn first_hop_isolated_singleton() {
        let mut b = GraphBuilder::new(2, 2);
        b.add_edge(0, 1, 1.0);
        let mut b3 = GraphBuilder::new(3, 3);
        b3.add_edge(0, 1, 1.0);
        let g = b3.with_attrs(NodeAttributes::identity(3)).build();
        drop(b);
        let walks = first_hop_walks(&g);
        assert!(walks.contains(&vec![2]));
    }
}
