//! # coane-error
//!
//! The workspace-wide typed error layer. Every fallible operation that can
//! be reached from *external input* — reading graph files, parsing LINQS
//! datasets, loading persisted models, restoring training checkpoints,
//! validating user-supplied configuration, or a training run whose loss
//! leaves the finite range — reports a [`CoaneError`] instead of panicking.
//!
//! Each variant carries enough context (file path, line number, expected vs
//! actual shape) to act on the failure, and maps to a stable process exit
//! code via [`CoaneError::exit_code`] so shell pipelines around `coane-cli`
//! can branch on the failure class:
//!
//! | variant | exit code | meaning |
//! |---------|-----------|---------|
//! | [`CoaneError::Config`]     | 2 | invalid configuration / CLI usage |
//! | [`CoaneError::Io`]         | 3 | file system / OS level failure |
//! | [`CoaneError::Parse`]      | 4 | malformed input file |
//! | [`CoaneError::Graph`]      | 5 | structurally invalid graph |
//! | [`CoaneError::Numeric`]    | 6 | non-finite loss/parameters after bounded recovery |
//! | [`CoaneError::Checkpoint`] | 7 | unusable training checkpoint |
//! | [`CoaneError::Store`]      | 8 | unusable embedding-store file |
//! | [`CoaneError::Busy`]       | 9 | server overloaded, retry later |
//! | [`CoaneError::MutLog`]     | 10 | unusable mutation log / generation state |

use std::fmt;
use std::path::{Path, PathBuf};

/// Convenience alias used across the workspace.
pub type CoaneResult<T> = Result<T, CoaneError>;

/// Every failure class the CoANE stack can surface from external input.
#[derive(Debug)]
pub enum CoaneError {
    /// Invalid configuration (hyperparameters, CLI flags, walk settings).
    Config {
        /// What invariant was violated.
        message: String,
    },
    /// An operating-system level I/O failure (open, read, write, rename).
    Io {
        /// The file involved, when known.
        path: Option<PathBuf>,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Malformed input data (JSON graphs, `.content`/`.cites` rows, CSVs).
    Parse {
        /// The file involved, when known.
        file: Option<PathBuf>,
        /// 1-based line number of the offending row, when known.
        line: Option<u64>,
        /// What failed to parse.
        message: String,
    },
    /// A structurally invalid graph (asymmetric edges, out-of-range ids…).
    Graph {
        /// Which invariant the graph violates.
        message: String,
    },
    /// Training produced non-finite losses or parameters and bounded
    /// recovery (rollback + learning-rate halving) was exhausted.
    Numeric {
        /// What went non-finite and after how many recovery attempts.
        message: String,
    },
    /// A checkpoint file that cannot be used: bad magic, version or
    /// checksum mismatch, truncation, or a configuration fingerprint that
    /// differs from the resuming run.
    Checkpoint {
        /// The checkpoint file, when known.
        path: Option<PathBuf>,
        /// Why the checkpoint was rejected.
        message: String,
    },
    /// An embedding-store file that cannot be used: bad magic, unsupported
    /// format version, CRC32 mismatch, truncation, or a shape that
    /// contradicts the header.
    Store {
        /// The store file, when known.
        path: Option<PathBuf>,
        /// Why the store was rejected.
        message: String,
    },
    /// The serving layer shed this request: the admission queue was
    /// saturated for the request's priority class. Transient by definition —
    /// the caller should retry after `retry_after_secs`.
    Busy {
        /// What was overloaded (e.g. the queue depth at rejection).
        message: String,
        /// Suggested client back-off, surfaced as HTTP `Retry-After`.
        retry_after_secs: u32,
    },
    /// Unusable live-mutation state: a write-ahead mutation log with a bad
    /// magic/version/header, an unreadable `CURRENT` generation marker, or a
    /// generation directory with no loadable generation left to fall back
    /// to. Distinct from [`CoaneError::Store`] (one store *file* is bad) —
    /// this means the mutation subsystem as a whole cannot recover a
    /// consistent state.
    MutLog {
        /// The log / marker file involved, when known.
        path: Option<PathBuf>,
        /// Why the mutation state was rejected.
        message: String,
    },
}

impl CoaneError {
    /// Invalid-configuration error.
    pub fn config(message: impl Into<String>) -> Self {
        Self::Config { message: message.into() }
    }

    /// I/O error tagged with the file it concerned.
    pub fn io(path: impl AsRef<Path>, source: std::io::Error) -> Self {
        Self::Io { path: Some(path.as_ref().to_path_buf()), source }
    }

    /// Parse error without location info.
    pub fn parse(message: impl Into<String>) -> Self {
        Self::Parse { file: None, line: None, message: message.into() }
    }

    /// Parse error at a 1-based line of a named file.
    pub fn parse_at(path: impl AsRef<Path>, line: u64, message: impl Into<String>) -> Self {
        Self::Parse {
            file: Some(path.as_ref().to_path_buf()),
            line: Some(line),
            message: message.into(),
        }
    }

    /// Structurally-invalid-graph error.
    pub fn graph(message: impl Into<String>) -> Self {
        Self::Graph { message: message.into() }
    }

    /// Non-finite-numerics error.
    pub fn numeric(message: impl Into<String>) -> Self {
        Self::Numeric { message: message.into() }
    }

    /// Unusable-checkpoint error.
    pub fn checkpoint(path: impl AsRef<Path>, message: impl Into<String>) -> Self {
        Self::Checkpoint { path: Some(path.as_ref().to_path_buf()), message: message.into() }
    }

    /// Unusable-embedding-store error.
    pub fn store(path: impl AsRef<Path>, message: impl Into<String>) -> Self {
        Self::Store { path: Some(path.as_ref().to_path_buf()), message: message.into() }
    }

    /// Server-overloaded error with a retry hint.
    pub fn busy(message: impl Into<String>, retry_after_secs: u32) -> Self {
        Self::Busy { message: message.into(), retry_after_secs }
    }

    /// Unusable-mutation-state error.
    pub fn mutlog(path: impl AsRef<Path>, message: impl Into<String>) -> Self {
        Self::MutLog { path: Some(path.as_ref().to_path_buf()), message: message.into() }
    }

    /// Attaches (or replaces) file/line context on a [`CoaneError::Parse`];
    /// other variants pass through unchanged. Lets low-level row parsers
    /// report positions and file-level callers fill in the path.
    pub fn with_parse_context(self, path: impl AsRef<Path>, line: Option<u64>) -> Self {
        match self {
            Self::Parse { line: old_line, message, .. } => Self::Parse {
                file: Some(path.as_ref().to_path_buf()),
                line: line.or(old_line),
                message,
            },
            other => other,
        }
    }

    /// The 1-based line number carried by a parse error, if any.
    pub fn parse_line(&self) -> Option<u64> {
        match self {
            Self::Parse { line, .. } => *line,
            _ => None,
        }
    }

    /// Stable process exit code for `coane-cli` (see the module table).
    pub fn exit_code(&self) -> u8 {
        match self {
            Self::Config { .. } => 2,
            Self::Io { .. } => 3,
            Self::Parse { .. } => 4,
            Self::Graph { .. } => 5,
            Self::Numeric { .. } => 6,
            Self::Checkpoint { .. } => 7,
            Self::Store { .. } => 8,
            Self::Busy { .. } => 9,
            Self::MutLog { .. } => 10,
        }
    }

    /// Short lowercase tag naming the failure class (used in CLI output).
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Config { .. } => "config",
            Self::Io { .. } => "io",
            Self::Parse { .. } => "parse",
            Self::Graph { .. } => "graph",
            Self::Numeric { .. } => "numeric",
            Self::Checkpoint { .. } => "checkpoint",
            Self::Store { .. } => "store",
            Self::Busy { .. } => "busy",
            Self::MutLog { .. } => "mutlog",
        }
    }
}

impl fmt::Display for CoaneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config { message } => write!(f, "invalid configuration: {message}"),
            Self::Io { path: Some(p), source } => {
                write!(f, "io error on {}: {source}", p.display())
            }
            Self::Io { path: None, source } => write!(f, "io error: {source}"),
            Self::Parse { file, line, message } => {
                write!(f, "parse error")?;
                if let Some(p) = file {
                    write!(f, " in {}", p.display())?;
                }
                if let Some(l) = line {
                    write!(f, " at line {l}")?;
                }
                write!(f, ": {message}")
            }
            Self::Graph { message } => write!(f, "invalid graph: {message}"),
            Self::Numeric { message } => write!(f, "numeric failure: {message}"),
            Self::Checkpoint { path: Some(p), message } => {
                write!(f, "checkpoint error ({}): {message}", p.display())
            }
            Self::Checkpoint { path: None, message } => write!(f, "checkpoint error: {message}"),
            Self::Store { path: Some(p), message } => {
                write!(f, "embedding-store error ({}): {message}", p.display())
            }
            Self::Store { path: None, message } => write!(f, "embedding-store error: {message}"),
            Self::Busy { message, retry_after_secs } => {
                write!(f, "server busy: {message} (retry after {retry_after_secs}s)")
            }
            Self::MutLog { path: Some(p), message } => {
                write!(f, "mutation-log error ({}): {message}", p.display())
            }
            Self::MutLog { path: None, message } => write!(f, "mutation-log error: {message}"),
        }
    }
}

impl std::error::Error for CoaneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CoaneError {
    fn from(source: std::io::Error) -> Self {
        Self::Io { path: None, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_stable_and_distinct() {
        let errors = [
            CoaneError::config("x"),
            CoaneError::io("/f", std::io::Error::other("boom")),
            CoaneError::parse("x"),
            CoaneError::graph("x"),
            CoaneError::numeric("x"),
            CoaneError::checkpoint("/c", "x"),
            CoaneError::store("/s", "x"),
            CoaneError::busy("queue full", 1),
            CoaneError::mutlog("/w", "x"),
        ];
        let codes: Vec<u8> = errors.iter().map(CoaneError::exit_code).collect();
        assert_eq!(codes, vec![2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len(), "exit codes must be distinct");
    }

    #[test]
    fn display_includes_location() {
        let e = CoaneError::parse_at("data/cora.content", 17, "bad attribute value");
        let msg = e.to_string();
        assert!(msg.contains("cora.content"), "{msg}");
        assert!(msg.contains("line 17"), "{msg}");
        assert_eq!(e.parse_line(), Some(17));
    }

    #[test]
    fn parse_context_attaches_file_and_keeps_line() {
        let e = CoaneError::Parse { file: None, line: Some(3), message: "bad".into() }
            .with_parse_context("x.cites", None);
        match e {
            CoaneError::Parse { file, line, .. } => {
                assert_eq!(file.as_deref(), Some(Path::new("x.cites")));
                assert_eq!(line, Some(3));
            }
            other => panic!("wrong variant: {other}"),
        }
    }

    #[test]
    fn io_error_chains_source() {
        let e = CoaneError::io("/tmp/x", std::io::Error::other("disk on fire"));
        assert!(std::error::Error::source(&e).is_some());
        assert_eq!(e.kind(), "io");
    }
}
