//! Incremental construction of [`AttributedGraph`]s.

use crate::graph::{AttributedGraph, NodeAttributes};
use crate::NodeId;

/// Builds an [`AttributedGraph`] from a stream of (possibly duplicated,
/// possibly asymmetric) undirected edges.
///
/// Duplicate edges are merged by *summing* weights; self-loops are dropped.
/// If no attributes are supplied, one-hot identity attributes are used.
///
/// ```
/// use coane_graph::{GraphBuilder, NodeAttributes};
/// let mut b = GraphBuilder::new(3, 3);
/// b.add_edge(0, 1, 1.0);
/// b.add_edge(1, 0, 0.5); // merged into (0,1) with weight 1.5
/// b.add_edge(1, 2, 2.0);
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.edge_weight(0, 1), Some(1.5));
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    attr_dim: usize,
    edges: Vec<(NodeId, NodeId, f32)>,
    attrs: Option<NodeAttributes>,
    labels: Option<Vec<u32>>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes and attribute dim `attr_dim`
    /// (only used when no explicit attributes are set).
    pub fn new(n: usize, attr_dim: usize) -> Self {
        Self { n, attr_dim, edges: Vec::new(), attrs: None, labels: None }
    }

    /// Adds an undirected edge. Self-loops are ignored.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range or the weight is not finite and
    /// positive.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: f32) -> &mut Self {
        assert!((u as usize) < self.n && (v as usize) < self.n, "edge endpoint out of range");
        assert!(w.is_finite() && w > 0.0, "edge weight must be finite and positive");
        if u != v {
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            self.edges.push((a, b, w));
        }
        self
    }

    /// Adds many unweighted edges.
    pub fn add_edges(&mut self, edges: &[(NodeId, NodeId)]) -> &mut Self {
        for &(u, v) in edges {
            self.add_edge(u, v, 1.0);
        }
        self
    }

    /// Sets the node-attribute matrix.
    pub fn with_attrs(mut self, attrs: NodeAttributes) -> Self {
        assert_eq!(attrs.num_rows(), self.n, "attribute rows must equal n");
        self.attrs = Some(attrs);
        self
    }

    /// Sets ground-truth labels.
    pub fn with_labels(mut self, labels: Vec<u32>) -> Self {
        assert_eq!(labels.len(), self.n, "labels length must equal n");
        self.labels = Some(labels);
        self
    }

    /// Number of (pre-dedup) edges added so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into a validated [`AttributedGraph`].
    pub fn build(self) -> AttributedGraph {
        let Self { n, attr_dim, mut edges, attrs, labels } = self;
        // Merge duplicates by (u, v), summing weights.
        edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        let mut merged: Vec<(NodeId, NodeId, f32)> = Vec::with_capacity(edges.len());
        for (u, v, w) in edges {
            match merged.last_mut() {
                Some(last) if last.0 == u && last.1 == v => last.2 += w,
                _ => merged.push((u, v, w)),
            }
        }
        // Degree counting pass, then fill.
        let mut deg = vec![0usize; n];
        for &(u, v, _) in &merged {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut indptr = Vec::with_capacity(n + 1);
        indptr.push(0usize);
        for d in &deg {
            indptr.push(indptr.last().unwrap() + d);
        }
        let total = *indptr.last().unwrap();
        let mut neighbors = vec![0 as NodeId; total];
        let mut weights = vec![0.0f32; total];
        let mut cursor = indptr[..n].to_vec();
        for &(u, v, w) in &merged {
            neighbors[cursor[u as usize]] = v;
            weights[cursor[u as usize]] = w;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            weights[cursor[v as usize]] = w;
            cursor[v as usize] += 1;
        }
        // Sort each adjacency list (neighbors of u were appended in edge order).
        for v in 0..n {
            let (s, e) = (indptr[v], indptr[v + 1]);
            let mut pairs: Vec<(NodeId, f32)> =
                neighbors[s..e].iter().copied().zip(weights[s..e].iter().copied()).collect();
            pairs.sort_unstable_by_key(|&(nb, _)| nb);
            for (k, (nb, w)) in pairs.into_iter().enumerate() {
                neighbors[s + k] = nb;
                weights[s + k] = w;
            }
        }
        let attrs = attrs.unwrap_or_else(|| {
            if attr_dim == n {
                NodeAttributes::identity(n)
            } else {
                NodeAttributes::from_sparse_rows(attr_dim.max(1), &vec![vec![]; n])
            }
        });
        AttributedGraph::from_csr(n, indptr, neighbors, weights, attrs, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_duplicates_and_symmetrizes() {
        let mut b = GraphBuilder::new(4, 4);
        b.add_edge(2, 1, 1.0);
        b.add_edge(1, 2, 3.0);
        b.add_edge(0, 3, 1.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(1, 2), Some(4.0));
        assert_eq!(g.edge_weight(2, 1), Some(4.0));
    }

    #[test]
    fn drops_self_loops() {
        let mut b = GraphBuilder::new(2, 2);
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn adjacency_sorted() {
        let mut b = GraphBuilder::new(5, 5);
        b.add_edge(0, 4, 1.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(0, 3, 1.0);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        assert_eq!(g.neighbors_of(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn default_attrs_identity_when_dim_matches() {
        let mut b = GraphBuilder::new(3, 3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        let g = b.build();
        assert_eq!(g.attr_dim(), 3);
        let (idx, _) = g.attrs().row(2);
        assert_eq!(idx, &[2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2, 2);
        b.add_edge(0, 5, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_bad_weight() {
        let mut b = GraphBuilder::new(2, 2);
        b.add_edge(0, 1, -1.0);
    }

    #[test]
    fn isolated_nodes_allowed() {
        let mut b = GraphBuilder::new(10, 10);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.degree(7), 0);
        assert!(g.neighbors_of(7).is_empty());
    }
}
