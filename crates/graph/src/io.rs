//! Graph serialization: JSON (via serde) and the plain-text edge-list /
//! attribute-list formats used by the LINQS dataset distributions the paper
//! evaluates on (`*.cites` edge lists and `*.content` attribute rows).

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::graph::{AttributedGraph, NodeAttributes};
use crate::NodeId;

/// Writes the graph as pretty JSON.
pub fn save_json(g: &AttributedGraph, path: &Path) -> io::Result<()> {
    let f = BufWriter::new(File::create(path)?);
    serde_json::to_writer(f, g).map_err(io::Error::other)
}

/// Reads a graph previously written by [`save_json`].
pub fn load_json(path: &Path) -> io::Result<AttributedGraph> {
    let f = BufReader::new(File::open(path)?);
    let g: AttributedGraph = serde_json::from_reader(f).map_err(io::Error::other)?;
    g.validate();
    Ok(g)
}

/// Writes a whitespace-separated edge list, one `u v w` triple per line.
pub fn save_edge_list(g: &AttributedGraph, path: &Path) -> io::Result<()> {
    let mut f = BufWriter::new(File::create(path)?);
    for (u, v, w) in g.edges() {
        writeln!(f, "{u} {v} {w}")?;
    }
    Ok(())
}

/// One parsed `.content` row: `(external id, sparse attrs, label name)`.
pub type ContentRow = (String, Vec<(u32, f32)>, String);

/// Parses a LINQS-style `.content` file: each line is
/// `node_id <d binary attr values> label`. Returns one [`ContentRow`] per
/// input line.
pub fn parse_content_lines<B: BufRead>(reader: B) -> io::Result<Vec<ContentRow>> {
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let mut toks = line.split_whitespace();
        let Some(id) = toks.next() else { continue };
        let rest: Vec<&str> = toks.collect();
        if rest.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("content row for {id} has no label"),
            ));
        }
        let label = rest[rest.len() - 1].to_string();
        let mut attrs = Vec::new();
        for (i, tok) in rest[..rest.len() - 1].iter().enumerate() {
            let v: f32 = tok.parse().map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad attr value: {e}"))
            })?;
            if v != 0.0 {
                attrs.push((i as u32, v));
            }
        }
        out.push((id.to_string(), attrs, label));
    }
    Ok(out)
}

/// Loads a LINQS-style dataset from a `.content` attribute file and a `.cites`
/// edge-list file (whitespace separated external-id pairs). Edges that
/// reference unknown node ids are skipped, matching the common preprocessing
/// of these datasets.
pub fn load_linqs(content_path: &Path, cites_path: &Path) -> io::Result<AttributedGraph> {
    use std::collections::HashMap;
    let rows = parse_content_lines(BufReader::new(File::open(content_path)?))?;
    if rows.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty content file"));
    }
    let dim = {
        // All rows must agree on dimensionality: track the max index + 1 from
        // a dense format, which is the token count of the first row.
        let first = BufReader::new(File::open(content_path)?)
            .lines()
            .next()
            .transpose()?
            .unwrap_or_default();
        first.split_whitespace().count().saturating_sub(2)
    };
    let mut id_map: HashMap<String, NodeId> = HashMap::with_capacity(rows.len());
    let mut label_map: HashMap<String, u32> = HashMap::new();
    let mut attrs = Vec::with_capacity(rows.len());
    let mut labels = Vec::with_capacity(rows.len());
    for (ext, a, lab) in rows {
        let next = id_map.len() as NodeId;
        id_map.entry(ext).or_insert(next);
        attrs.push(a);
        let next_label = label_map.len() as u32;
        labels.push(*label_map.entry(lab).or_insert(next_label));
    }
    let n = id_map.len();
    let mut b = GraphBuilder::new(n, dim);
    for line in BufReader::new(File::open(cites_path)?).lines() {
        let line = line?;
        let mut toks = line.split_whitespace();
        if let (Some(a), Some(bn)) = (toks.next(), toks.next()) {
            if let (Some(&u), Some(&v)) = (id_map.get(a), id_map.get(bn)) {
                if u != v {
                    b.add_edge(u, v, 1.0);
                }
            }
        }
    }
    Ok(b.with_attrs(NodeAttributes::from_sparse_rows(dim, &attrs)).with_labels(labels).build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, NodeAttributes};

    fn tiny() -> AttributedGraph {
        let mut b = GraphBuilder::new(3, 2);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.with_attrs(NodeAttributes::from_dense(
            2,
            &[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]],
        ))
        .with_labels(vec![0, 1, 1])
        .build()
    }

    #[test]
    fn json_roundtrip() {
        let g = tiny();
        let dir = std::env::temp_dir().join("coane_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.json");
        save_json(&g, &path).unwrap();
        let g2 = load_json(&path).unwrap();
        assert_eq!(g2.num_nodes(), 3);
        assert_eq!(g2.num_edges(), 2);
        assert_eq!(g2.edge_weight(1, 2), Some(2.0));
        assert_eq!(g2.labels(), Some(&[0u32, 1, 1][..]));
        assert_eq!(g2.attrs(), g.attrs());
    }

    #[test]
    fn edge_list_written() {
        let g = tiny();
        let dir = std::env::temp_dir().join("coane_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.edges");
        save_edge_list(&g, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("0 1 1"));
        assert!(text.contains("1 2 2"));
    }

    #[test]
    fn parses_content_rows() {
        let data = "p1 1 0 1 genetics\np2 0 0 0 theory\n";
        let rows = parse_content_lines(data.as_bytes()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "p1");
        assert_eq!(rows[0].1, vec![(0, 1.0), (2, 1.0)]);
        assert_eq!(rows[0].2, "genetics");
        assert!(rows[1].1.is_empty());
    }

    #[test]
    fn loads_linqs_pair() {
        let dir = std::env::temp_dir().join("coane_graph_linqs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let content = dir.join("x.content");
        let cites = dir.join("x.cites");
        std::fs::write(&content, "a 1 0 L1\nb 0 1 L2\nc 1 1 L1\n").unwrap();
        std::fs::write(&cites, "a b\nb c\nmissing a\na a\n").unwrap();
        let g = load_linqs(&content, &cites).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2); // unknown + self-loop rows skipped
        assert_eq!(g.attr_dim(), 2);
        assert_eq!(g.num_labels(), 2);
    }

    #[test]
    fn rejects_row_without_label() {
        let data = "p1\n";
        assert!(parse_content_lines(data.as_bytes()).is_err());
    }
}
