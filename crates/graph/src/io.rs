//! Graph serialization: JSON (via serde) and the plain-text edge-list /
//! attribute-list formats used by the LINQS dataset distributions the paper
//! evaluates on (`*.cites` edge lists and `*.content` attribute rows).
//!
//! Every loader in this module treats its input as *untrusted*: malformed
//! files surface a typed [`CoaneError`] (with the file and, for row-based
//! formats, the 1-based line number) instead of panicking. Deserialized
//! graphs are re-checked against the structural invariants via
//! [`AttributedGraph::try_validate`] before they are handed to callers.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use coane_error::{CoaneError, CoaneResult};

use crate::builder::GraphBuilder;
use crate::graph::{AttributedGraph, NodeAttributes};
use crate::NodeId;

/// Node-id ceiling for formats that derive the node count from the largest
/// id seen: a single corrupt line must not be able to request a
/// multi-gigabyte allocation.
pub const MAX_EDGE_LIST_NODE_ID: u32 = 50_000_000;

/// Writes the graph as JSON.
pub fn save_json(g: &AttributedGraph, path: &Path) -> CoaneResult<()> {
    let f = BufWriter::new(File::create(path).map_err(|e| CoaneError::io(path, e))?);
    serde_json::to_writer(f, g)
        .map_err(|e| CoaneError::parse(e.to_string()).with_parse_context(path, None))
}

/// Reads a graph previously written by [`save_json`]. The deserialized
/// structure is fully re-validated: corrupt adjacency (out-of-range ids,
/// asymmetric edges, broken CSR offsets, non-finite weights or attributes)
/// returns [`CoaneError::Graph`] instead of panicking downstream.
pub fn load_json(path: &Path) -> CoaneResult<AttributedGraph> {
    let f = BufReader::new(File::open(path).map_err(|e| CoaneError::io(path, e))?);
    let g: AttributedGraph = serde_json::from_reader(f)
        .map_err(|e| CoaneError::parse(e.to_string()).with_parse_context(path, None))?;
    g.try_validate().map_err(|msg| CoaneError::graph(format!("{}: {msg}", path.display())))?;
    Ok(g)
}

/// Writes a whitespace-separated edge list, one `u v w` triple per line.
pub fn save_edge_list(g: &AttributedGraph, path: &Path) -> CoaneResult<()> {
    let mut f = BufWriter::new(File::create(path).map_err(|e| CoaneError::io(path, e))?);
    for (u, v, w) in g.edges() {
        writeln!(f, "{u} {v} {w}").map_err(|e| CoaneError::io(path, e))?;
    }
    Ok(())
}

/// Loads a whitespace-separated edge list (`u v` or `u v w` per line; blank
/// lines skipped; self-loops and duplicate edges merged away by the builder).
///
/// When `num_nodes` is given, any id `>= num_nodes` is an out-of-range
/// [`CoaneError::Parse`] carrying the offending line. When `None`, the node
/// count is `max id + 1`, capped at [`MAX_EDGE_LIST_NODE_ID`] so corrupt
/// lines cannot trigger runaway allocations. The resulting graph carries
/// identity attributes (structure-only datasets).
pub fn load_edge_list(path: &Path, num_nodes: Option<usize>) -> CoaneResult<AttributedGraph> {
    let reader = BufReader::new(File::open(path).map_err(|e| CoaneError::io(path, e))?);
    let mut edges: Vec<(u32, u32, f32)> = Vec::new();
    let mut max_id = 0u32;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx as u64 + 1;
        let line = line.map_err(|e| CoaneError::io(path, e))?;
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.is_empty() {
            continue;
        }
        if toks.len() != 2 && toks.len() != 3 {
            return Err(CoaneError::parse_at(
                path,
                lineno,
                format!("expected `u v [w]`, found {} tokens", toks.len()),
            ));
        }
        let parse_id = |tok: &str| -> CoaneResult<u32> {
            let id: u32 = tok.parse().map_err(|e| {
                CoaneError::parse_at(path, lineno, format!("bad node id {tok:?}: {e}"))
            })?;
            if id > MAX_EDGE_LIST_NODE_ID {
                return Err(CoaneError::parse_at(
                    path,
                    lineno,
                    format!("node id {id} exceeds the edge-list limit {MAX_EDGE_LIST_NODE_ID}"),
                ));
            }
            if let Some(n) = num_nodes {
                if id as usize >= n {
                    return Err(CoaneError::parse_at(
                        path,
                        lineno,
                        format!("node id {id} out of range (graph has {n} nodes)"),
                    ));
                }
            }
            Ok(id)
        };
        let u = parse_id(toks[0])?;
        let v = parse_id(toks[1])?;
        let w: f32 = match toks.get(2) {
            Some(tok) => tok.parse().map_err(|e| {
                CoaneError::parse_at(path, lineno, format!("bad edge weight {tok:?}: {e}"))
            })?,
            None => 1.0,
        };
        if !w.is_finite() || w <= 0.0 {
            return Err(CoaneError::parse_at(
                path,
                lineno,
                format!("edge weight {w} must be finite and > 0"),
            ));
        }
        max_id = max_id.max(u).max(v);
        if u != v {
            edges.push((u, v, w));
        }
    }
    let n = num_nodes.unwrap_or(if edges.is_empty() { 0 } else { max_id as usize + 1 });
    let mut b = GraphBuilder::new(n, n);
    for (u, v, w) in edges {
        b.add_edge(u, v, w);
    }
    Ok(b.build())
}

/// One parsed `.content` row.
#[derive(Clone, Debug, PartialEq)]
pub struct ContentRow {
    /// 1-based line number in the source file (propagated into errors).
    pub line: u64,
    /// The external (string) node id.
    pub id: String,
    /// Sparse attribute vector: `(index, value)` for every non-zero token.
    pub attrs: Vec<(u32, f32)>,
    /// Dense attribute-token count of this row — all rows of a file must
    /// agree on it (checked by [`load_linqs`]).
    pub num_attrs: usize,
    /// The class-label token (last token of the row).
    pub label: String,
}

/// Parses a LINQS-style `.content` file: each line is
/// `node_id <d attr values> label`. Blank lines are skipped. Malformed rows
/// (no label token, unparsable or non-finite attribute values) return
/// [`CoaneError::Parse`] carrying the 1-based line number.
pub fn parse_content_lines<B: BufRead>(reader: B) -> CoaneResult<Vec<ContentRow>> {
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx as u64 + 1;
        let line = line?;
        let mut toks = line.split_whitespace();
        let Some(id) = toks.next() else { continue };
        let rest: Vec<&str> = toks.collect();
        if rest.is_empty() {
            return Err(CoaneError::Parse {
                file: None,
                line: Some(lineno),
                message: format!("content row for {id:?} has no label token"),
            });
        }
        let label = rest[rest.len() - 1].to_string();
        let num_attrs = rest.len() - 1;
        let mut attrs = Vec::new();
        for (i, tok) in rest[..num_attrs].iter().enumerate() {
            let v: f32 = tok.parse().map_err(|e| CoaneError::Parse {
                file: None,
                line: Some(lineno),
                message: format!("bad attribute value {tok:?}: {e}"),
            })?;
            if !v.is_finite() {
                return Err(CoaneError::Parse {
                    file: None,
                    line: Some(lineno),
                    message: format!("non-finite attribute value {tok:?}"),
                });
            }
            if v != 0.0 {
                attrs.push((i as u32, v));
            }
        }
        out.push(ContentRow { line: lineno, id: id.to_string(), attrs, num_attrs, label });
    }
    Ok(out)
}

/// Parses a LINQS-style `.cites` file: one `citing cited` external-id pair
/// per line. Blank lines are skipped; any other token count is a
/// [`CoaneError::Parse`] carrying the 1-based line number.
pub fn parse_cites_lines<B: BufRead>(reader: B) -> CoaneResult<Vec<(u64, String, String)>> {
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx as u64 + 1;
        let line = line?;
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.as_slice() {
            [] => continue,
            [a, b] => out.push((lineno, a.to_string(), b.to_string())),
            _ => {
                return Err(CoaneError::Parse {
                    file: None,
                    line: Some(lineno),
                    message: format!("expected `citing cited`, found {} tokens", toks.len()),
                })
            }
        }
    }
    Ok(out)
}

/// Loads a LINQS-style dataset from a `.content` attribute file and a
/// `.cites` edge-list file. Edges that reference unknown node ids are
/// skipped (matching the common preprocessing of these datasets), as are
/// self-citations. Duplicate node ids and rows whose attribute count
/// disagrees with the first row are parse errors with line numbers.
pub fn load_linqs(content_path: &Path, cites_path: &Path) -> CoaneResult<AttributedGraph> {
    let rows = parse_content_lines(BufReader::new(
        File::open(content_path).map_err(|e| CoaneError::io(content_path, e))?,
    ))
    .map_err(|e| e.with_parse_context(content_path, None))?;
    if rows.is_empty() {
        return Err(CoaneError::parse("empty content file").with_parse_context(content_path, None));
    }
    let dim = rows[0].num_attrs;
    let mut id_map: HashMap<String, NodeId> = HashMap::with_capacity(rows.len());
    let mut label_map: HashMap<String, u32> = HashMap::new();
    let mut attrs = Vec::with_capacity(rows.len());
    let mut labels = Vec::with_capacity(rows.len());
    for row in rows {
        if row.num_attrs != dim {
            return Err(CoaneError::parse_at(
                content_path,
                row.line,
                format!("row has {} attribute values, first row has {dim}", row.num_attrs),
            ));
        }
        let next = id_map.len() as NodeId;
        if id_map.insert(row.id.clone(), next).is_some() {
            return Err(CoaneError::parse_at(
                content_path,
                row.line,
                format!("duplicate node id {:?}", row.id),
            ));
        }
        attrs.push(row.attrs);
        let next_label = label_map.len() as u32;
        labels.push(*label_map.entry(row.label).or_insert(next_label));
    }
    let n = id_map.len();
    let mut b = GraphBuilder::new(n, dim);
    let pairs = parse_cites_lines(BufReader::new(
        File::open(cites_path).map_err(|e| CoaneError::io(cites_path, e))?,
    ))
    .map_err(|e| e.with_parse_context(cites_path, None))?;
    for (_, a, bn) in pairs {
        if let (Some(&u), Some(&v)) = (id_map.get(&a), id_map.get(&bn)) {
            if u != v {
                b.add_edge(u, v, 1.0);
            }
        }
    }
    Ok(b.with_attrs(NodeAttributes::from_sparse_rows(dim, &attrs)).with_labels(labels).build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, NodeAttributes};

    fn tiny() -> AttributedGraph {
        let mut b = GraphBuilder::new(3, 2);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.with_attrs(NodeAttributes::from_dense(
            2,
            &[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]],
        ))
        .with_labels(vec![0, 1, 1])
        .build()
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn json_roundtrip() {
        let g = tiny();
        let path = tmp_dir("coane_graph_io_test").join("g.json");
        save_json(&g, &path).unwrap();
        let g2 = load_json(&path).unwrap();
        assert_eq!(g2.num_nodes(), 3);
        assert_eq!(g2.num_edges(), 2);
        assert_eq!(g2.edge_weight(1, 2), Some(2.0));
        assert_eq!(g2.labels(), Some(&[0u32, 1, 1][..]));
        assert_eq!(g2.attrs(), g.attrs());
    }

    #[test]
    fn corrupt_json_is_error_not_panic() {
        let dir = tmp_dir("coane_graph_io_corrupt");
        // Syntactically invalid JSON.
        let p1 = dir.join("syntax.json");
        std::fs::write(&p1, "{\"n\": 3, ").unwrap();
        assert!(matches!(load_json(&p1), Err(CoaneError::Parse { .. })));
        // Structurally invalid: asymmetric adjacency with an out-of-range id.
        let p2 = dir.join("structure.json");
        let g = tiny();
        save_json(&g, &p2).unwrap();
        let text = std::fs::read_to_string(&p2).unwrap();
        // Corrupt a neighbor id far out of range (the adjacency [1,0,2,1] is
        // the only place this array appears in the serialized form).
        let corrupted = text.replacen("[1,0,2,1]", "[1,0,2,99]", 1);
        assert_ne!(text, corrupted, "fixture drifted: neighbor array not found");
        std::fs::write(&p2, &corrupted).unwrap();
        match load_json(&p2) {
            Err(CoaneError::Graph { .. }) | Err(CoaneError::Parse { .. }) => {}
            other => panic!("expected graph/parse error, got {other:?}"),
        }
    }

    #[test]
    fn edge_list_roundtrip_and_errors() {
        let g = tiny();
        let dir = tmp_dir("coane_graph_io_test");
        let path = dir.join("g.edges");
        save_edge_list(&g, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("0 1 1"));
        assert!(text.contains("1 2 2"));
        let g2 = load_edge_list(&path, Some(3)).unwrap();
        assert_eq!(g2.num_edges(), 2);
        assert_eq!(g2.edge_weight(1, 2), Some(2.0));

        // Out-of-range id with an explicit node count.
        let bad = dir.join("bad.edges");
        std::fs::write(&bad, "0 1\n0 7\n").unwrap();
        let err = load_edge_list(&bad, Some(3)).unwrap_err();
        assert_eq!(err.parse_line(), Some(2), "{err}");

        // Unparsable id, bad token count, bad weight.
        std::fs::write(&bad, "0 x\n").unwrap();
        assert_eq!(load_edge_list(&bad, None).unwrap_err().parse_line(), Some(1));
        std::fs::write(&bad, "0 1 2 3\n").unwrap();
        assert_eq!(load_edge_list(&bad, None).unwrap_err().parse_line(), Some(1));
        std::fs::write(&bad, "0 1 -2.0\n").unwrap();
        assert_eq!(load_edge_list(&bad, None).unwrap_err().parse_line(), Some(1));
        std::fs::write(&bad, "0 1 NaN\n").unwrap();
        assert_eq!(load_edge_list(&bad, None).unwrap_err().parse_line(), Some(1));

        // Giant id without an explicit node count must not allocate.
        std::fs::write(&bad, format!("0 {}\n", u32::MAX)).unwrap();
        assert!(load_edge_list(&bad, None).is_err());
    }

    #[test]
    fn parses_content_rows() {
        let data = "p1 1 0 1 genetics\np2 0 0 0 theory\n";
        let rows = parse_content_lines(data.as_bytes()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].id, "p1");
        assert_eq!(rows[0].attrs, vec![(0, 1.0), (2, 1.0)]);
        assert_eq!(rows[0].label, "genetics");
        assert_eq!(rows[0].line, 1);
        assert_eq!(rows[1].line, 2);
        assert!(rows[1].attrs.is_empty());
    }

    #[test]
    fn content_errors_carry_line_numbers() {
        assert_eq!(parse_content_lines("p1\n".as_bytes()).unwrap_err().parse_line(), Some(1));
        let data = "ok 1 0 L\nbad 1 x L\n";
        assert_eq!(parse_content_lines(data.as_bytes()).unwrap_err().parse_line(), Some(2));
        let data = "ok 1 0 L\n\nbad 1 NaN L\n";
        assert_eq!(parse_content_lines(data.as_bytes()).unwrap_err().parse_line(), Some(3));
    }

    #[test]
    fn cites_errors_carry_line_numbers() {
        let ok = parse_cites_lines("a b\n\nc d\n".as_bytes()).unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok[1], (3, "c".to_string(), "d".to_string()));
        assert_eq!(parse_cites_lines("a b\nonly\n".as_bytes()).unwrap_err().parse_line(), Some(2));
        assert_eq!(parse_cites_lines("a b c\n".as_bytes()).unwrap_err().parse_line(), Some(1));
    }

    #[test]
    fn loads_linqs_pair() {
        let dir = tmp_dir("coane_graph_linqs_test");
        let content = dir.join("x.content");
        let cites = dir.join("x.cites");
        std::fs::write(&content, "a 1 0 L1\nb 0 1 L2\nc 1 1 L1\n").unwrap();
        std::fs::write(&cites, "a b\nb c\nmissing a\na a\n").unwrap();
        let g = load_linqs(&content, &cites).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2); // unknown + self-loop rows skipped
        assert_eq!(g.attr_dim(), 2);
        assert_eq!(g.num_labels(), 2);
    }

    #[test]
    fn linqs_rejects_duplicates_and_ragged_rows() {
        let dir = tmp_dir("coane_graph_linqs_test");
        let cites = dir.join("ok.cites");
        std::fs::write(&cites, "a b\n").unwrap();

        let content = dir.join("dup.content");
        std::fs::write(&content, "a 1 0 L1\nb 0 1 L2\na 1 1 L1\n").unwrap();
        let err = load_linqs(&content, &cites).unwrap_err();
        assert_eq!(err.parse_line(), Some(3), "{err}");

        let content = dir.join("ragged.content");
        std::fs::write(&content, "a 1 0 L1\nb 0 1 1 L2\n").unwrap();
        let err = load_linqs(&content, &cites).unwrap_err();
        assert_eq!(err.parse_line(), Some(2), "{err}");
    }

    #[test]
    fn rejects_row_without_label() {
        assert!(parse_content_lines("p1\n".as_bytes()).is_err());
    }
}
