//! The attributed graph `G = (V, E, X)` in CSR form.

use serde::{Deserialize, Serialize};

use crate::NodeId;

/// Sparse node attributes `X ∈ R^{n×d}` stored in CSR form.
///
/// The paper's datasets carry sparse high-dimensional binary bag-of-words
/// attributes (e.g. Flickr: d = 12047), so dense storage is wasteful; rows
/// are materialized densely only where a model needs them (attribute-context
/// matrices, attribute reconstruction targets).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeAttributes {
    dim: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl NodeAttributes {
    /// Builds attributes from per-node sparse rows of `(attribute index, value)`.
    ///
    /// # Panics
    /// Panics if any attribute index is `>= dim`.
    pub fn from_sparse_rows(dim: usize, rows: &[Vec<(u32, f32)>]) -> Self {
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        let nnz: usize = rows.iter().map(Vec::len).sum();
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        indptr.push(0);
        for row in rows {
            let mut sorted: Vec<(u32, f32)> = row.clone();
            sorted.sort_unstable_by_key(|&(i, _)| i);
            for &(i, v) in &sorted {
                assert!((i as usize) < dim, "attribute index {i} out of range (dim={dim})");
                indices.push(i);
                values.push(v);
            }
            indptr.push(indices.len());
        }
        Self { dim, indptr, indices, values }
    }

    /// Builds attributes from a dense row-major matrix, dropping zeros.
    pub fn from_dense(dim: usize, rows: &[Vec<f32>]) -> Self {
        let sparse: Vec<Vec<(u32, f32)>> = rows
            .iter()
            .map(|r| {
                assert_eq!(r.len(), dim);
                r.iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0.0)
                    .map(|(i, &v)| (i as u32, v))
                    .collect()
            })
            .collect();
        Self::from_sparse_rows(dim, &sparse)
    }

    /// One-hot identity attributes (used by the paper's "WF" ablation where
    /// real attributes are withheld and structure alone must suffice).
    pub fn identity(n: usize) -> Self {
        let rows: Vec<Vec<(u32, f32)>> = (0..n).map(|i| vec![(i as u32, 1.0)]).collect();
        Self::from_sparse_rows(n, &rows)
    }

    /// Attribute dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows (nodes).
    pub fn num_rows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Total number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Sparse row view: parallel slices of attribute indices and values.
    pub fn row(&self, v: NodeId) -> (&[u32], &[f32]) {
        let (s, e) = (self.indptr[v as usize], self.indptr[v as usize + 1]);
        (&self.indices[s..e], &self.values[s..e])
    }

    /// Writes the dense form of row `v` into `out` (which must have length `dim`).
    /// Existing contents of `out` are overwritten with zeros first.
    pub fn write_row_dense(&self, v: NodeId, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim);
        out.fill(0.0);
        let (idx, val) = self.row(v);
        for (&i, &x) in idx.iter().zip(val) {
            out[i as usize] = x;
        }
    }

    /// Adds `scale * row(v)` into `out` without zeroing (dense accumulate).
    pub fn accumulate_row(&self, v: NodeId, scale: f32, out: &mut [f32]) {
        let (idx, val) = self.row(v);
        for (&i, &x) in idx.iter().zip(val) {
            out[i as usize] += scale * x;
        }
    }

    /// Materializes rows `nodes` as a dense row-major `(nodes.len() × dim)` buffer.
    pub fn gather_dense(&self, nodes: &[NodeId]) -> Vec<f32> {
        let mut out = vec![0.0; nodes.len() * self.dim];
        for (r, &v) in nodes.iter().enumerate() {
            let (idx, val) = self.row(v);
            let base = r * self.dim;
            for (&i, &x) in idx.iter().zip(val) {
                out[base + i as usize] = x;
            }
        }
        out
    }

    /// Checks the CSR invariants without panicking — needed when the matrix
    /// arrives from untrusted input (deserialized JSON), where malformed
    /// index arrays would otherwise cause out-of-bounds panics in
    /// [`NodeAttributes::row`].
    pub fn try_validate(&self) -> Result<(), String> {
        if self.indptr.is_empty() {
            return Err("attribute indptr is empty".to_string());
        }
        if self.indptr[0] != 0 {
            return Err(format!("attribute indptr must start at 0, found {}", self.indptr[0]));
        }
        if self.indptr.windows(2).any(|w| w[0] > w[1]) {
            return Err("attribute indptr is not monotonically non-decreasing".to_string());
        }
        if *self.indptr.last().unwrap() != self.indices.len() {
            return Err(format!(
                "attribute indptr total {} does not match nnz {}",
                self.indptr.last().unwrap(),
                self.indices.len()
            ));
        }
        if self.indices.len() != self.values.len() {
            return Err(format!(
                "{} attribute indices but {} values",
                self.indices.len(),
                self.values.len()
            ));
        }
        if let Some(&bad) = self.indices.iter().find(|&&i| i as usize >= self.dim) {
            return Err(format!("attribute index {bad} out of range (dim = {})", self.dim));
        }
        if let Some(bad) = self.values.iter().find(|v| !v.is_finite()) {
            return Err(format!("non-finite attribute value {bad}"));
        }
        Ok(())
    }

    /// Cosine similarity between the attribute vectors of `u` and `v`.
    /// Returns 0 when either row is all-zero.
    pub fn cosine(&self, u: NodeId, v: NodeId) -> f32 {
        let (ia, va) = self.row(u);
        let (ib, vb) = self.row(v);
        let na: f32 = va.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = vb.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        // Two-pointer sparse dot product over sorted indices.
        let mut dot = 0.0f32;
        let (mut p, mut q) = (0usize, 0usize);
        while p < ia.len() && q < ib.len() {
            match ia[p].cmp(&ib[q]) {
                std::cmp::Ordering::Less => p += 1,
                std::cmp::Ordering::Greater => q += 1,
                std::cmp::Ordering::Equal => {
                    dot += va[p] * vb[q];
                    p += 1;
                    q += 1;
                }
            }
        }
        dot / (na * nb)
    }
}

/// An undirected attributed graph in CSR form with optional edge weights and
/// ground-truth labels.
///
/// Invariants (checked by [`AttributedGraph::validate`] and the builder):
/// - adjacency lists are sorted and deduplicated,
/// - the adjacency structure is symmetric (`(u,v)` present iff `(v,u)` is),
/// - no self-loops,
/// - `attrs.num_rows() == n` and, when present, `labels.len() == n`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AttributedGraph {
    n: usize,
    indptr: Vec<usize>,
    neighbors: Vec<NodeId>,
    weights: Vec<f32>,
    attrs: NodeAttributes,
    labels: Option<Vec<u32>>,
}

impl AttributedGraph {
    /// Assembles a graph from raw CSR parts. Prefer [`crate::GraphBuilder`].
    ///
    /// # Panics
    /// Panics if the parts are inconsistent (see type-level invariants).
    pub fn from_csr(
        n: usize,
        indptr: Vec<usize>,
        neighbors: Vec<NodeId>,
        weights: Vec<f32>,
        attrs: NodeAttributes,
        labels: Option<Vec<u32>>,
    ) -> Self {
        let g = Self { n, indptr, neighbors, weights, attrs, labels };
        g.validate();
        g
    }

    /// Checks all structural invariants; panics with a description on
    /// violation. Use on programmatically-constructed graphs where a
    /// violation is a bug; for graphs deserialized from untrusted input use
    /// [`AttributedGraph::try_validate`].
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Checks all structural invariants without panicking, returning a
    /// description of the first violation. This is the entry point for
    /// untrusted input (e.g. [`crate::io::load_json`]): a corrupt file must
    /// surface an `Err`, never abort the process.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.indptr.len() != self.n + 1 {
            return Err(format!(
                "indptr length {} does not match node count {} + 1",
                self.indptr.len(),
                self.n
            ));
        }
        if self.neighbors.len() != self.weights.len() {
            return Err(format!(
                "{} neighbors but {} weights",
                self.neighbors.len(),
                self.weights.len()
            ));
        }
        if self.indptr[0] != 0 {
            return Err(format!("indptr must start at 0, found {}", self.indptr[0]));
        }
        if *self.indptr.last().unwrap() != self.neighbors.len() {
            return Err(format!(
                "indptr total {} does not match neighbor count {}",
                self.indptr.last().unwrap(),
                self.neighbors.len()
            ));
        }
        if self.indptr.windows(2).any(|w| w[0] > w[1]) {
            return Err("indptr is not monotonically non-decreasing".to_string());
        }
        if self.attrs.num_rows() != self.n {
            return Err(format!("{} attribute rows for {} nodes", self.attrs.num_rows(), self.n));
        }
        self.attrs.try_validate()?;
        if let Some(l) = &self.labels {
            if l.len() != self.n {
                return Err(format!("{} labels for {} nodes", l.len(), self.n));
            }
        }
        for v in 0..self.n {
            let nb = self.neighbors_of(v as NodeId);
            for w in nb.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("adjacency of node {v} not sorted/deduplicated"));
                }
            }
            for &u in nb {
                if (u as usize) >= self.n {
                    return Err(format!("node {v} has out-of-range neighbor {u} (n = {})", self.n));
                }
                if u as usize == v {
                    return Err(format!("self-loop at node {v}"));
                }
                if !self.has_edge(u, v as NodeId) {
                    return Err(format!(
                        "asymmetric edge: ({v},{u}) present but ({u},{v}) missing"
                    ));
                }
            }
        }
        for (i, &w) in self.weights.iter().enumerate() {
            if !w.is_finite() || w <= 0.0 {
                return Err(format!("edge weight #{i} is {w}; weights must be finite and > 0"));
            }
        }
        Ok(())
    }

    /// Number of nodes `n = |V|`.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of undirected edges `|E|`.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Graph density `|E| / (n(n-1)/2)` as reported in Table 1 of the paper.
    pub fn density(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let possible = self.n as f64 * (self.n as f64 - 1.0) / 2.0;
        self.num_edges() as f64 / possible
    }

    /// Sorted neighbor list of `v`.
    pub fn neighbors_of(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.indptr[v as usize]..self.indptr[v as usize + 1]]
    }

    /// Edge weights parallel to [`Self::neighbors_of`].
    pub fn weights_of(&self, v: NodeId) -> &[f32] {
        &self.weights[self.indptr[v as usize]..self.indptr[v as usize + 1]]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.indptr[v as usize + 1] - self.indptr[v as usize]
    }

    /// Sum of edge weights incident to `v` (`Σ_j E_vj`, the random-walk
    /// normalizer of §3.1).
    pub fn weighted_degree(&self, v: NodeId) -> f32 {
        self.weights_of(v).iter().sum()
    }

    /// Whether the undirected edge `(u, v)` exists (binary search, O(log deg)).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors_of(u).binary_search(&v).is_ok()
    }

    /// Weight of edge `(u, v)`, or `None` when absent.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f32> {
        self.neighbors_of(u).binary_search(&v).ok().map(|i| self.weights_of(u)[i])
    }

    /// Iterator over each undirected edge once, as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f32)> + '_ {
        (0..self.n as NodeId).flat_map(move |u| {
            self.neighbors_of(u)
                .iter()
                .zip(self.weights_of(u))
                .filter(move |(&v, _)| u < v)
                .map(move |(&v, &w)| (u, v, w))
        })
    }

    /// Node attributes `X`.
    pub fn attrs(&self) -> &NodeAttributes {
        &self.attrs
    }

    /// Attribute dimensionality `d`.
    pub fn attr_dim(&self) -> usize {
        self.attrs.dim()
    }

    /// Ground-truth labels, when present.
    pub fn labels(&self) -> Option<&[u32]> {
        self.labels.as_deref()
    }

    /// Number of distinct labels (0 if the graph is unlabeled).
    pub fn num_labels(&self) -> usize {
        self.labels
            .as_ref()
            .map(|l| l.iter().copied().max().map_or(0, |m| m as usize + 1))
            .unwrap_or(0)
    }

    /// Replaces the attribute matrix (e.g. for the WF ablation which swaps in
    /// identity attributes). The new matrix must have `n` rows.
    pub fn with_attrs(mut self, attrs: NodeAttributes) -> Self {
        assert_eq!(attrs.num_rows(), self.n, "attribute rows must equal n");
        self.attrs = attrs;
        self
    }

    /// Returns a copy of this graph with the given undirected edges removed.
    /// Used by link-prediction splits to form the residual training graph.
    pub fn remove_edges(&self, removed: &[(NodeId, NodeId)]) -> Self {
        use std::collections::HashSet;
        let dead: HashSet<(NodeId, NodeId)> =
            removed.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect();
        let mut indptr = Vec::with_capacity(self.n + 1);
        let mut neighbors = Vec::with_capacity(self.neighbors.len());
        let mut weights = Vec::with_capacity(self.weights.len());
        indptr.push(0);
        for u in 0..self.n as NodeId {
            for (&v, &w) in self.neighbors_of(u).iter().zip(self.weights_of(u)) {
                if !dead.contains(&(u, v)) {
                    neighbors.push(v);
                    weights.push(w);
                }
            }
            indptr.push(neighbors.len());
        }
        Self {
            n: self.n,
            indptr,
            neighbors,
            weights,
            attrs: self.attrs.clone(),
            labels: self.labels.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path_graph(n: usize) -> AttributedGraph {
        let mut b = GraphBuilder::new(n, 4);
        for i in 0..n - 1 {
            b.add_edge(i as NodeId, i as NodeId + 1, 1.0);
        }
        b.with_attrs(NodeAttributes::from_dense(
            4,
            &(0..n).map(|i| vec![i as f32, 1.0, 0.0, 0.0]).collect::<Vec<_>>(),
        ))
        .build()
    }

    #[test]
    fn csr_roundtrip_and_degrees() {
        let g = path_graph(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.neighbors_of(2), &[1, 3]);
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 4));
        assert_eq!(g.edge_weight(3, 4), Some(1.0));
        assert_eq!(g.edge_weight(0, 3), None);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = path_graph(6);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 5);
        for (u, v, _) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn density_matches_definition() {
        let g = path_graph(5);
        let expect = 4.0 / (5.0 * 4.0 / 2.0);
        assert!((g.density() - expect).abs() < 1e-12);
    }

    #[test]
    fn attr_dense_gather() {
        let g = path_graph(3);
        let buf = g.attrs().gather_dense(&[2, 0]);
        assert_eq!(buf, vec![2.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn attr_row_dense_and_accumulate() {
        let attrs = NodeAttributes::from_sparse_rows(3, &[vec![(0, 2.0), (2, 1.0)], vec![]]);
        let mut out = vec![9.0; 3];
        attrs.write_row_dense(0, &mut out);
        assert_eq!(out, vec![2.0, 0.0, 1.0]);
        attrs.accumulate_row(0, 0.5, &mut out);
        assert_eq!(out, vec![3.0, 0.0, 1.5]);
        attrs.write_row_dense(1, &mut out);
        assert_eq!(out, vec![0.0; 3]);
    }

    #[test]
    fn cosine_similarity() {
        let attrs = NodeAttributes::from_sparse_rows(
            4,
            &[vec![(0, 1.0), (1, 1.0)], vec![(0, 1.0), (1, 1.0)], vec![(2, 1.0)], vec![]],
        );
        assert!((attrs.cosine(0, 1) - 1.0).abs() < 1e-6);
        assert_eq!(attrs.cosine(0, 2), 0.0);
        assert_eq!(attrs.cosine(0, 3), 0.0);
    }

    #[test]
    fn identity_attrs() {
        let a = NodeAttributes::identity(3);
        assert_eq!(a.dim(), 3);
        let (idx, val) = a.row(1);
        assert_eq!(idx, &[1]);
        assert_eq!(val, &[1.0]);
    }

    #[test]
    fn remove_edges_keeps_symmetry() {
        let g = path_graph(5);
        let g2 = g.remove_edges(&[(1, 2)]);
        g2.validate();
        assert_eq!(g2.num_edges(), 3);
        assert!(!g2.has_edge(1, 2));
        assert!(!g2.has_edge(2, 1));
        assert!(g2.has_edge(0, 1));
    }

    #[test]
    #[should_panic(expected = "attribute index")]
    fn attr_index_out_of_range_panics() {
        NodeAttributes::from_sparse_rows(2, &[vec![(5, 1.0)]]);
    }

    #[test]
    fn num_labels_from_max() {
        let mut b = GraphBuilder::new(3, 1);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        let g = b.with_attrs(NodeAttributes::identity(3)).with_labels(vec![0, 2, 2]).build();
        assert_eq!(g.num_labels(), 3);
    }
}
