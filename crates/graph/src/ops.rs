//! Structural graph operations: components, normalized adjacency matrices for
//! GCN-style encoders, common neighbours, and degree statistics.

use crate::graph::AttributedGraph;
use crate::NodeId;

/// A sparse matrix in CSR triple form `(indptr, indices, values)` with a
/// square `n × n` shape. Produced by the adjacency-normalization helpers and
/// consumed by `coane-nn`'s sparse-dense matmul op.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrTriple {
    /// Number of rows (== number of columns).
    pub n: usize,
    /// Row pointers, length `n + 1`.
    pub indptr: Vec<usize>,
    /// Column indices per row, sorted.
    pub indices: Vec<u32>,
    /// Values parallel to `indices`.
    pub values: Vec<f32>,
}

impl CsrTriple {
    /// Row view as `(indices, values)`.
    pub fn row(&self, i: usize) -> (&[u32], &[f32]) {
        let (s, e) = (self.indptr[i], self.indptr[i + 1]);
        (&self.indices[s..e], &self.values[s..e])
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Dense `n × m -> n × m` product `out = self · x` where `x` is row-major
    /// with `m` columns. Allocates the output.
    pub fn matmul_dense(&self, x: &[f32], m: usize) -> Vec<f32> {
        assert_eq!(x.len(), self.n * m, "dense operand shape");
        let mut out = vec![0.0f32; self.n * m];
        for i in 0..self.n {
            let (idx, val) = self.row(i);
            let orow = &mut out[i * m..(i + 1) * m];
            for (&j, &a) in idx.iter().zip(val) {
                let xrow = &x[j as usize * m..(j as usize + 1) * m];
                for (o, &xv) in orow.iter_mut().zip(xrow) {
                    *o += a * xv;
                }
            }
        }
        out
    }
}

/// GCN-style symmetric normalization with self-loops:
/// `Â = D̃^{-1/2} (A + I) D̃^{-1/2}` where `D̃` is the degree matrix of `A + I`.
///
/// Used by the GAE/VGAE and GraphSAGE baselines.
pub fn normalized_adjacency(g: &AttributedGraph) -> CsrTriple {
    let n = g.num_nodes();
    let mut deg = vec![0.0f32; n];
    for v in 0..n as NodeId {
        deg[v as usize] = g.weighted_degree(v) + 1.0; // + self-loop
    }
    let inv_sqrt: Vec<f32> = deg.iter().map(|&d| 1.0 / d.sqrt()).collect();
    let mut indptr = Vec::with_capacity(n + 1);
    let mut indices = Vec::with_capacity(g.num_edges() * 2 + n);
    let mut values = Vec::with_capacity(g.num_edges() * 2 + n);
    indptr.push(0);
    for v in 0..n as NodeId {
        let mut inserted_self = false;
        for (&u, &w) in g.neighbors_of(v).iter().zip(g.weights_of(v)) {
            if !inserted_self && u > v {
                indices.push(v);
                values.push(inv_sqrt[v as usize] * inv_sqrt[v as usize]);
                inserted_self = true;
            }
            indices.push(u);
            values.push(w * inv_sqrt[v as usize] * inv_sqrt[u as usize]);
        }
        if !inserted_self {
            indices.push(v);
            values.push(inv_sqrt[v as usize] * inv_sqrt[v as usize]);
        }
        indptr.push(indices.len());
    }
    CsrTriple { n, indptr, indices, values }
}

/// Row-stochastic transition matrix `P = D^{-1} A` (the random-walk operator of
/// §3.1; rows of isolated nodes are all-zero).
pub fn transition_matrix(g: &AttributedGraph) -> CsrTriple {
    let n = g.num_nodes();
    let mut indptr = Vec::with_capacity(n + 1);
    let mut indices = Vec::with_capacity(g.num_edges() * 2);
    let mut values = Vec::with_capacity(g.num_edges() * 2);
    indptr.push(0);
    for v in 0..n as NodeId {
        let wd = g.weighted_degree(v);
        for (&u, &w) in g.neighbors_of(v).iter().zip(g.weights_of(v)) {
            indices.push(u);
            values.push(w / wd);
        }
        indptr.push(indices.len());
    }
    CsrTriple { n, indptr, indices, values }
}

/// Connected components by BFS. Returns `(component id per node, #components)`.
pub fn connected_components(g: &AttributedGraph) -> (Vec<u32>, usize) {
    let n = g.num_nodes();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        if comp[s] != u32::MAX {
            continue;
        }
        comp[s] = next;
        queue.push_back(s as NodeId);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors_of(v) {
                if comp[u as usize] == u32::MAX {
                    comp[u as usize] = next;
                    queue.push_back(u);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// Number of common neighbors of `u` and `v` (two-pointer merge over the
/// sorted adjacency lists).
pub fn common_neighbors(g: &AttributedGraph, u: NodeId, v: NodeId) -> usize {
    let (a, b) = (g.neighbors_of(u), g.neighbors_of(v));
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Nodes within `hops` hops of `v` (excluding `v` itself), via BFS.
/// Used by Fig. 5's comparison of walk contexts against fixed-hop regions.
pub fn k_hop_neighborhood(g: &AttributedGraph, v: NodeId, hops: usize) -> Vec<NodeId> {
    let mut dist = vec![usize::MAX; g.num_nodes()];
    dist[v as usize] = 0;
    let mut queue = std::collections::VecDeque::from([v]);
    let mut out = Vec::new();
    while let Some(x) = queue.pop_front() {
        if dist[x as usize] == hops {
            continue;
        }
        for &u in g.neighbors_of(x) {
            if dist[u as usize] == usize::MAX {
                dist[u as usize] = dist[x as usize] + 1;
                out.push(u);
                queue.push_back(u);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Degree distribution summary: `(min, max, mean)`.
pub fn degree_stats(g: &AttributedGraph) -> (usize, usize, f64) {
    let n = g.num_nodes();
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0usize;
    for v in 0..n as NodeId {
        let d = g.degree(v);
        min = min.min(d);
        max = max.max(d);
        sum += d;
    }
    (if n == 0 { 0 } else { min }, max, sum as f64 / n.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, NodeAttributes};

    fn triangle_plus_tail() -> AttributedGraph {
        // 0-1-2 triangle, 2-3 tail, 4 isolated
        let mut b = GraphBuilder::new(5, 5);
        b.add_edges(&[(0, 1), (1, 2), (0, 2), (2, 3)]);
        b.with_attrs(NodeAttributes::identity(5)).build()
    }

    #[test]
    fn normalized_adjacency_rows_sum_property() {
        let g = triangle_plus_tail();
        let a = normalized_adjacency(&g);
        // symmetric: Â_ij == Â_ji
        for i in 0..a.n {
            let (idx, val) = a.row(i);
            for (&j, &v) in idx.iter().zip(val) {
                let (jidx, jval) = a.row(j as usize);
                let pos = jidx.binary_search(&(i as u32)).expect("symmetric entry");
                assert!((jval[pos] - v).abs() < 1e-6);
            }
        }
        // self-loop present on every row, including the isolated node
        for i in 0..a.n {
            let (idx, _) = a.row(i);
            assert!(idx.contains(&(i as u32)), "row {i} missing self-loop");
        }
    }

    #[test]
    fn transition_rows_sum_to_one() {
        let g = triangle_plus_tail();
        let p = transition_matrix(&g);
        for i in 0..4 {
            let (_, val) = p.row(i);
            let s: f32 = val.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {i} sums to {s}");
        }
        let (_, val) = p.row(4);
        assert!(val.is_empty());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn csr_matmul_dense_matches_manual() {
        let g = triangle_plus_tail();
        let p = transition_matrix(&g);
        // x = one column: the all-ones vector. P · 1 = 1 on non-isolated rows.
        let x = vec![1.0f32; 5];
        let y = p.matmul_dense(&x, 1);
        for i in 0..4 {
            assert!((y[i] - 1.0).abs() < 1e-6);
        }
        assert_eq!(y[4], 0.0);
    }

    #[test]
    fn components() {
        let g = triangle_plus_tail();
        let (comp, k) = connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(comp[0], comp[3]);
        assert_ne!(comp[0], comp[4]);
    }

    #[test]
    fn common_neighbors_counts() {
        let g = triangle_plus_tail();
        assert_eq!(common_neighbors(&g, 0, 1), 1); // node 2
        assert_eq!(common_neighbors(&g, 0, 3), 1); // node 2
        assert_eq!(common_neighbors(&g, 0, 4), 0);
    }

    #[test]
    fn k_hop() {
        let g = triangle_plus_tail();
        assert_eq!(k_hop_neighborhood(&g, 0, 1), vec![1, 2]);
        assert_eq!(k_hop_neighborhood(&g, 0, 2), vec![1, 2, 3]);
        assert!(k_hop_neighborhood(&g, 4, 3).is_empty());
    }

    #[test]
    fn degree_statistics() {
        let g = triangle_plus_tail();
        let (min, max, mean) = degree_stats(&g);
        assert_eq!(min, 0);
        assert_eq!(max, 3);
        assert!((mean - 8.0 / 5.0).abs() < 1e-12);
    }
}

/// Random walk with restart (personalized PageRank) scores from `source`,
/// by power iteration: `p ← (1−α) P᳔ p + α e_source` where `P` is the
/// row-stochastic transition matrix and `α` the restart probability.
///
/// The paper cites RWR (§3.3.1) to justify boosting one-hop co-occurrences
/// via `D¹`: with restart, direct neighbours receive much higher stationary
/// probability than multi-hop ones. [`rwr_scores`] lets tests and analyses
/// verify that property on real graphs.
pub fn rwr_scores(g: &AttributedGraph, source: NodeId, restart: f32, iters: usize) -> Vec<f32> {
    assert!((0.0..=1.0).contains(&restart), "restart must be a probability");
    let n = g.num_nodes();
    let mut p = vec![0.0f32; n];
    p[source as usize] = 1.0;
    let mut next = vec![0.0f32; n];
    for _ in 0..iters {
        next.iter_mut().for_each(|x| *x = 0.0);
        for v in 0..n as NodeId {
            let mass = p[v as usize];
            if mass == 0.0 {
                continue;
            }
            let wd = g.weighted_degree(v);
            if wd == 0.0 {
                // dangling node: all mass restarts
                next[source as usize] += mass * (1.0 - restart);
                continue;
            }
            for (&u, &w) in g.neighbors_of(v).iter().zip(g.weights_of(v)) {
                next[u as usize] += mass * (1.0 - restart) * (w / wd);
            }
        }
        next[source as usize] += restart;
        // normalize drift (restart mass is added every step)
        let total: f32 = next.iter().sum();
        for x in next.iter_mut() {
            *x /= total;
        }
        std::mem::swap(&mut p, &mut next);
    }
    p
}

/// Newman modularity `Q` of a node partition:
/// `Q = Σ_c (e_c / m − (deg_c / 2m)²)` where `e_c` is the number of
/// intra-community edges and `deg_c` the community's total degree. Useful as
/// an unsupervised companion to NMI when judging recovered clusters.
pub fn modularity(g: &AttributedGraph, communities: &[u32]) -> f64 {
    assert_eq!(communities.len(), g.num_nodes(), "partition length");
    let m = g.num_edges() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let k = communities.iter().copied().max().unwrap_or(0) as usize + 1;
    let mut intra = vec![0.0f64; k];
    let mut deg = vec![0.0f64; k];
    for (u, v, _) in g.edges() {
        if communities[u as usize] == communities[v as usize] {
            intra[communities[u as usize] as usize] += 1.0;
        }
    }
    for v in 0..g.num_nodes() as NodeId {
        deg[communities[v as usize] as usize] += g.degree(v) as f64;
    }
    (0..k).map(|c| intra[c] / m - (deg[c] / (2.0 * m)).powi(2)).sum()
}

#[cfg(test)]
mod rwr_tests {
    use super::*;
    use crate::{GraphBuilder, NodeAttributes};

    fn two_triangles_bridge() -> AttributedGraph {
        // triangle {0,1,2} — bridge 2-3 — triangle {3,4,5}
        let mut b = GraphBuilder::new(6, 6);
        b.add_edges(&[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        b.with_attrs(NodeAttributes::identity(6)).build()
    }

    #[test]
    fn rwr_prefers_one_hop_neighbors() {
        let g = two_triangles_bridge();
        let p = rwr_scores(&g, 0, 0.3, 60);
        // one-hop neighbours of 0 outrank the far triangle's nodes
        assert!(p[1] > p[4], "one-hop {} vs three-hop {}", p[1], p[4]);
        assert!(p[2] > p[5]);
        // source itself carries the most mass
        assert!(p[0] >= *p.iter().max_by(|a, b| a.partial_cmp(b).unwrap()).unwrap() - 1e-6);
        let total: f32 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-4, "probabilities sum to {total}");
    }

    #[test]
    fn rwr_handles_isolated_source() {
        let mut b = GraphBuilder::new(3, 3);
        b.add_edge(0, 1, 1.0);
        let g = b.with_attrs(NodeAttributes::identity(3)).build();
        let p = rwr_scores(&g, 2, 0.2, 20);
        assert!((p[2] - 1.0).abs() < 1e-5, "isolated source keeps all mass");
    }

    #[test]
    fn modularity_favors_true_partition() {
        let g = two_triangles_bridge();
        let good = modularity(&g, &[0, 0, 0, 1, 1, 1]);
        let bad = modularity(&g, &[0, 1, 0, 1, 0, 1]);
        assert!(good > 0.2, "good partition Q = {good}");
        assert!(good > bad, "good {good} <= bad {bad}");
    }

    #[test]
    fn modularity_single_community_is_zero() {
        let g = two_triangles_bridge();
        let q = modularity(&g, &[0; 6]);
        assert!(q.abs() < 1e-12);
    }
}
