//! # coane-graph
//!
//! Attributed-graph substrate for the CoANE reproduction.
//!
//! The central type is [`AttributedGraph`], the paper's `G = (V, E, X)`:
//! an undirected, optionally weighted graph in compressed-sparse-row (CSR)
//! form together with a sparse node-attribute matrix `X ∈ R^{n×d}` and
//! (optionally) ground-truth node labels used by the evaluation tasks.
//!
//! Modules:
//! - [`graph`] — the CSR graph and sparse attribute storage,
//! - [`builder`] — incremental construction with deduplication,
//! - [`ops`] — structural operations (degrees, components, normalized
//!   adjacency for GCN-style encoders, common neighbours, …),
//! - [`split`] — link-prediction edge splits (train/validation/test plus
//!   sampled non-edges) that mirror the protocol of §4.2 of the paper,
//! - [`io`] — JSON and plain-text serialization.

pub mod builder;
pub mod graph;
pub mod io;
pub mod ops;
pub mod split;

pub use builder::GraphBuilder;
pub use graph::{AttributedGraph, NodeAttributes};
pub use ops::CsrTriple;
pub use split::{EdgeSplit, SplitConfig};

/// A node identifier. Node ids are dense indices in `0..n`.
pub type NodeId = u32;
