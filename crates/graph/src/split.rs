//! Link-prediction edge splits.
//!
//! The paper (§4.2, "Link prediction") randomly chooses 70% / 10% / 20% of
//! edges as training / validation / test sets, samples an equal number of
//! non-existing links as negative instances (without replication across
//! sets), and trains embeddings on the *residual* graph that contains only
//! the training edges.

use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

use crate::graph::AttributedGraph;
use crate::NodeId;

/// Fractions of edges assigned to train / validation / test.
#[derive(Clone, Copy, Debug)]
pub struct SplitConfig {
    /// Fraction of edges kept for embedding training (residual graph).
    pub train: f64,
    /// Fraction of edges held out for hyperparameter validation.
    pub validation: f64,
    /// Fraction of edges held out for final testing.
    pub test: f64,
}

impl SplitConfig {
    /// The paper's 70/10/20 split.
    pub fn paper() -> Self {
        Self { train: 0.7, validation: 0.1, test: 0.2 }
    }

    fn validate(&self) {
        assert!(
            (self.train + self.validation + self.test - 1.0).abs() < 1e-9,
            "split fractions must sum to 1"
        );
        assert!(self.train > 0.0 && self.validation >= 0.0 && self.test > 0.0);
    }
}

/// The outcome of an edge split: positive/negative pairs per partition and the
/// residual graph that embedding methods may train on.
#[derive(Clone, Debug)]
pub struct EdgeSplit {
    /// Residual graph containing only training edges.
    pub train_graph: AttributedGraph,
    /// Training-positive edges (also present in `train_graph`).
    pub train_pos: Vec<(NodeId, NodeId)>,
    /// Training-negative node pairs (non-edges of the *full* graph).
    pub train_neg: Vec<(NodeId, NodeId)>,
    /// Validation positives (removed from `train_graph`).
    pub val_pos: Vec<(NodeId, NodeId)>,
    /// Validation negatives.
    pub val_neg: Vec<(NodeId, NodeId)>,
    /// Test positives (removed from `train_graph`).
    pub test_pos: Vec<(NodeId, NodeId)>,
    /// Test negatives.
    pub test_neg: Vec<(NodeId, NodeId)>,
}

impl EdgeSplit {
    /// Splits `g` per `cfg` using `rng`. Negative pairs are sampled uniformly
    /// from non-edges, deduplicated, and never replicated across partitions.
    pub fn new<R: Rng>(g: &AttributedGraph, cfg: SplitConfig, rng: &mut R) -> Self {
        cfg.validate();
        let mut edges: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        edges.shuffle(rng);
        let m = edges.len();
        let n_val = (m as f64 * cfg.validation).round() as usize;
        let n_test = (m as f64 * cfg.test).round() as usize;
        assert!(n_val + n_test < m, "not enough edges to split");
        let val_pos: Vec<_> = edges[0..n_val].to_vec();
        let test_pos: Vec<_> = edges[n_val..n_val + n_test].to_vec();
        let train_pos: Vec<_> = edges[n_val + n_test..].to_vec();
        let removed: Vec<_> = val_pos.iter().chain(&test_pos).copied().collect();
        let train_graph = g.remove_edges(&removed);

        let total_negs = train_pos.len() + val_pos.len() + test_pos.len();
        let negs = sample_non_edges(g, total_negs, rng);
        let train_neg = negs[0..train_pos.len()].to_vec();
        let val_neg = negs[train_pos.len()..train_pos.len() + val_pos.len()].to_vec();
        let test_neg = negs[train_pos.len() + val_pos.len()..].to_vec();

        Self { train_graph, train_pos, train_neg, val_pos, val_neg, test_pos, test_neg }
    }
}

/// Samples `count` distinct non-edges `(u, v)` with `u < v` uniformly at random.
///
/// # Panics
/// Panics if the graph is too dense to contain `count` distinct non-edges.
pub fn sample_non_edges<R: Rng>(
    g: &AttributedGraph,
    count: usize,
    rng: &mut R,
) -> Vec<(NodeId, NodeId)> {
    let n = g.num_nodes() as u64;
    let possible = n * (n - 1) / 2 - g.num_edges() as u64;
    assert!(count as u64 <= possible, "requested {count} non-edges but only {possible} exist");
    let mut seen: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(count * 2);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let u = rng.gen_range(0..n as NodeId);
        let v = rng.gen_range(0..n as NodeId);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if g.has_edge(key.0, key.1) || !seen.insert(key) {
            continue;
        }
        out.push(key);
    }
    out
}

/// Splits labeled node ids into `(train, test)` with `train_ratio` of each
/// graph's nodes in the training set (stratification is *not* applied; the
/// paper reports plain random selection).
pub fn node_label_split<R: Rng>(
    n: usize,
    train_ratio: f64,
    rng: &mut R,
) -> (Vec<NodeId>, Vec<NodeId>) {
    assert!((0.0..1.0).contains(&train_ratio) && train_ratio > 0.0);
    let mut ids: Vec<NodeId> = (0..n as NodeId).collect();
    ids.shuffle(rng);
    let k = ((n as f64 * train_ratio).round() as usize).clamp(1, n - 1);
    (ids[..k].to_vec(), ids[k..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, NodeAttributes};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ring(n: usize) -> AttributedGraph {
        let mut b = GraphBuilder::new(n, n);
        for i in 0..n {
            b.add_edge(i as NodeId, ((i + 1) % n) as NodeId, 1.0);
        }
        b.with_attrs(NodeAttributes::identity(n)).build()
    }

    #[test]
    fn split_partitions_edges() {
        let g = ring(100);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let s = EdgeSplit::new(&g, SplitConfig::paper(), &mut rng);
        assert_eq!(s.val_pos.len(), 10);
        assert_eq!(s.test_pos.len(), 20);
        assert_eq!(s.train_pos.len(), 70);
        assert_eq!(s.train_graph.num_edges(), 70);
        // Held-out positives really are removed from the residual graph.
        for &(u, v) in s.test_pos.iter().chain(&s.val_pos) {
            assert!(!s.train_graph.has_edge(u, v));
        }
        for &(u, v) in &s.train_pos {
            assert!(s.train_graph.has_edge(u, v));
        }
    }

    #[test]
    fn negatives_are_nonedges_and_disjoint() {
        let g = ring(60);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let s = EdgeSplit::new(&g, SplitConfig::paper(), &mut rng);
        let mut all: Vec<(NodeId, NodeId)> = Vec::new();
        for set in [&s.train_neg, &s.val_neg, &s.test_neg] {
            for &(u, v) in set.iter() {
                assert!(!g.has_edge(u, v), "negative ({u},{v}) is an edge");
                assert!(u < v);
                all.push((u, v));
            }
        }
        let uniq: HashSet<_> = all.iter().collect();
        assert_eq!(uniq.len(), all.len(), "negatives replicated across sets");
        assert_eq!(s.test_neg.len(), s.test_pos.len());
    }

    #[test]
    fn label_split_sizes() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (tr, te) = node_label_split(100, 0.2, &mut rng);
        assert_eq!(tr.len(), 20);
        assert_eq!(te.len(), 80);
        let mut all: Vec<_> = tr.iter().chain(&te).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = ring(50);
        let s1 = EdgeSplit::new(&g, SplitConfig::paper(), &mut ChaCha8Rng::seed_from_u64(9));
        let s2 = EdgeSplit::new(&g, SplitConfig::paper(), &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(s1.test_pos, s2.test_pos);
        assert_eq!(s1.train_neg, s2.train_neg);
    }

    #[test]
    #[should_panic(expected = "non-edges")]
    fn dense_graph_cannot_supply_negatives() {
        // complete graph on 4 nodes has no non-edges
        let mut b = GraphBuilder::new(4, 4);
        for u in 0..4u32 {
            for v in u + 1..4 {
                b.add_edge(u, v, 1.0);
            }
        }
        let g = b.build();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        sample_non_edges(&g, 3, &mut rng);
    }
}
