//! The attributed social-circle network generator.
//!
//! Generative process (communities ⊃ circles ⊃ nodes):
//!
//! 1. Nodes are assigned to `num_communities` communities of roughly equal
//!    size; the community id is the node's ground-truth label.
//! 2. Each community is subdivided into `circles_per_community` *social
//!    circles* of random (log-uniform-ish) sizes — the "CS dept / family /
//!    labmates" structure the paper motivates.
//! 3. Edges are drawn until the target count is met: with probability
//!    `1 − mixing` an edge is placed inside a randomly chosen circle, with
//!    probability `mixing · intra_community_share` between two circles of the
//!    same community, and otherwise between communities (noise).
//! 4. Every community has a sparse *attribute prototype* (a set of
//!    characteristic attribute indices) and each circle an additional
//!    circle-specific prototype. A node activates each of its community
//!    prototype attributes with probability `proto_rate`, each circle
//!    prototype attribute with probability `circle_rate`, and background
//!    attributes at rate `noise_rate` — producing the sparse, homophilous
//!    binary bag-of-words matrices typical of Cora/Citeseer/WebKB.
//! 5. Nodes left isolated are connected to a random member of their circle
//!    (the paper's datasets are preprocessed to their largest components;
//!    random-walk methods need positive degree).

use coane_graph::{AttributedGraph, GraphBuilder, NodeAttributes, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Parameters of [`social_circle_graph`].
#[derive(Clone, Debug)]
pub struct SocialCircleConfig {
    /// Number of nodes `n`.
    pub num_nodes: usize,
    /// Number of communities (= ground-truth label classes).
    pub num_communities: usize,
    /// Social circles per community.
    pub circles_per_community: usize,
    /// Attribute dimensionality `d`.
    pub attr_dim: usize,
    /// Target number of undirected edges.
    pub num_edges: usize,
    /// Fraction of edges placed *outside* a single circle.
    pub mixing: f64,
    /// Of the mixed edges, the share that stays within the community.
    pub intra_community_share: f64,
    /// Number of characteristic attributes per community prototype.
    pub proto_attrs: usize,
    /// Number of extra characteristic attributes per circle.
    pub circle_attrs: usize,
    /// Activation probability of a community-prototype attribute.
    pub proto_rate: f64,
    /// Activation probability of a circle-prototype attribute.
    pub circle_rate: f64,
    /// Expected number of random background attributes per node.
    pub noise_attrs: f64,
    /// Fraction of each community prototype drawn from a shared pool
    /// (overlapping prototypes make labels non-trivial to read off the raw
    /// attributes, as in the real bag-of-words datasets).
    pub proto_overlap: f64,
    /// Fraction of nodes whose ground-truth label is resampled uniformly —
    /// mimicking the label noise of real datasets, where neither structure
    /// nor attributes predict the class perfectly (Cora's best published
    /// micro-F1 sits near 0.82, not 1.0).
    pub label_noise: f64,
}

impl Default for SocialCircleConfig {
    fn default() -> Self {
        Self {
            num_nodes: 500,
            num_communities: 5,
            circles_per_community: 3,
            attr_dim: 200,
            num_edges: 1200,
            mixing: 0.25,
            intra_community_share: 0.6,
            proto_attrs: 12,
            circle_attrs: 6,
            proto_rate: 0.55,
            circle_rate: 0.6,
            noise_attrs: 2.0,
            proto_overlap: 0.3,
            label_noise: 0.0,
        }
    }
}

impl SocialCircleConfig {
    fn validate(&self) {
        assert!(self.num_nodes >= 4, "need at least 4 nodes");
        assert!(self.num_communities >= 1 && self.num_communities <= self.num_nodes);
        assert!(self.circles_per_community >= 1);
        assert!(self.attr_dim >= self.num_communities * (self.proto_attrs + 1));
        assert!((0.0..=1.0).contains(&self.mixing));
        assert!((0.0..=1.0).contains(&self.intra_community_share));
        assert!((0.0..=1.0).contains(&self.proto_rate));
        assert!((0.0..=1.0).contains(&self.circle_rate));
        assert!((0.0..=1.0).contains(&self.proto_overlap));
        assert!((0.0..=1.0).contains(&self.label_noise));
    }
}

/// Node-level metadata the generator produced (useful for tests and the
/// Fig. 5 neighbour analysis).
#[derive(Clone, Debug)]
pub struct CircleAssignment {
    /// Community (= label) per node.
    pub community: Vec<u32>,
    /// Global circle id per node.
    pub circle: Vec<u32>,
    /// Members per global circle id.
    pub circle_members: Vec<Vec<NodeId>>,
}

/// Generates an attributed social-circle network. See the module docs for
/// the generative process. Deterministic given `rng`'s state.
pub fn social_circle_graph<R: Rng>(
    cfg: &SocialCircleConfig,
    rng: &mut R,
) -> (AttributedGraph, CircleAssignment) {
    cfg.validate();
    let n = cfg.num_nodes;
    let k = cfg.num_communities;

    // 1. communities: shuffle nodes, chop into k roughly equal slices.
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.shuffle(rng);
    let mut community = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        community[v as usize] = (i * k / n) as u32;
    }

    // 2. circles within each community.
    let mut circle = vec![0u32; n];
    let mut circle_members: Vec<Vec<NodeId>> = Vec::new();
    for c in 0..k as u32 {
        let mut members: Vec<NodeId> =
            (0..n as NodeId).filter(|&v| community[v as usize] == c).collect();
        members.shuffle(rng);
        let n_circ = cfg.circles_per_community.min(members.len().max(1));
        // Random cut points give circles of uneven sizes ("family" is smaller
        // than "CS dept"), which is part of the paper's motivation.
        let mut cuts: Vec<usize> = (0..n_circ - 1)
            .map(|_| if members.len() > 1 { rng.gen_range(1..members.len()) } else { 0 })
            .collect();
        cuts.push(0);
        cuts.push(members.len());
        cuts.sort_unstable();
        for w in cuts.windows(2) {
            let gid = circle_members.len() as u32;
            let slice = &members[w[0]..w[1]];
            if slice.is_empty() {
                continue;
            }
            for &v in slice {
                circle[v as usize] = gid;
            }
            circle_members.push(slice.to_vec());
        }
    }

    // 3. edges.
    let mut builder = GraphBuilder::new(n, cfg.attr_dim);
    let mut seen = std::collections::HashSet::<(NodeId, NodeId)>::new();
    let mut placed = 0usize;
    let mut attempts = 0usize;
    let max_attempts = cfg.num_edges * 60 + 10_000;
    // Weight circle choice by |circle|² / Σ: picking two random members of a
    // random node's circle is equivalent to size²-weighted circle sampling.
    while placed < cfg.num_edges && attempts < max_attempts {
        attempts += 1;
        let r: f64 = rng.gen();
        let (u, v) = if r > cfg.mixing {
            // intra-circle: anchor on a random node so bigger circles get
            // proportionally more internal edges.
            let u = rng.gen_range(0..n) as NodeId;
            let members = &circle_members[circle[u as usize] as usize];
            if members.len() < 2 {
                continue;
            }
            let v = members[rng.gen_range(0..members.len())];
            (u, v)
        } else if rng.gen_bool(cfg.intra_community_share) {
            // intra-community, cross-circle
            let u = rng.gen_range(0..n) as NodeId;
            let v = rng.gen_range(0..n) as NodeId;
            if community[u as usize] != community[v as usize] {
                continue;
            }
            (u, v)
        } else {
            // cross-community noise
            let u = rng.gen_range(0..n) as NodeId;
            let v = rng.gen_range(0..n) as NodeId;
            if k > 1 && community[u as usize] == community[v as usize] {
                continue;
            }
            (u, v)
        };
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            builder.add_edge(u, v, 1.0);
            placed += 1;
        }
    }

    // 5. rescue isolated nodes (do this before attrs so validation holds).
    let mut degree = vec![0usize; n];
    for &(u, v) in &seen {
        degree[u as usize] += 1;
        degree[v as usize] += 1;
    }
    for v in 0..n as NodeId {
        if degree[v as usize] > 0 {
            continue;
        }
        let members = &circle_members[circle[v as usize] as usize];
        let candidates: Vec<NodeId> = members.iter().copied().filter(|&u| u != v).collect();
        let u = if candidates.is_empty() {
            // singleton circle: attach to any other node
            let mut u = rng.gen_range(0..n) as NodeId;
            while u == v {
                u = rng.gen_range(0..n) as NodeId;
            }
            u
        } else {
            candidates[rng.gen_range(0..candidates.len())]
        };
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            builder.add_edge(u, v, 1.0);
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
    }

    // 4. attributes.
    let num_circles = circle_members.len();
    let mut community_protos = sample_prototypes(k, cfg.proto_attrs, cfg.attr_dim, rng);
    // Overlap: replace a fraction of each prototype with indices from a
    // shared pool so communities are attribute-correlated, not separable by
    // a single indicator.
    if cfg.proto_overlap > 0.0 && cfg.proto_attrs > 0 {
        let shared: Vec<u32> =
            (0..cfg.proto_attrs).map(|_| rng.gen_range(0..cfg.attr_dim as u32)).collect();
        let replace = ((cfg.proto_attrs as f64) * cfg.proto_overlap).round() as usize;
        for proto in &mut community_protos {
            for slot in 0..replace.min(proto.len()) {
                proto[slot] = shared[slot % shared.len()];
            }
        }
    }
    let circle_protos = sample_prototypes(num_circles, cfg.circle_attrs, cfg.attr_dim, rng);
    let mut rows: Vec<Vec<(u32, f32)>> = Vec::with_capacity(n);
    for v in 0..n {
        let mut row = std::collections::BTreeSet::<u32>::new();
        for &a in &community_protos[community[v] as usize] {
            if rng.gen_bool(cfg.proto_rate) {
                row.insert(a);
            }
        }
        for &a in &circle_protos[circle[v] as usize] {
            if rng.gen_bool(cfg.circle_rate) {
                row.insert(a);
            }
        }
        // Poisson-ish background noise: expected `noise_attrs` activations.
        let noise_count = poisson_knuth(cfg.noise_attrs, rng);
        for _ in 0..noise_count {
            row.insert(rng.gen_range(0..cfg.attr_dim as u32));
        }
        // Guarantee at least one active attribute so no all-zero rows exist.
        if row.is_empty() {
            row.insert(community_protos[community[v] as usize][0]);
        }
        rows.push(row.into_iter().map(|a| (a, 1.0)).collect());
    }

    // Ground-truth labels = community, with a noisy fraction resampled.
    let mut labels = community.clone();
    if cfg.label_noise > 0.0 && k > 1 {
        for l in labels.iter_mut() {
            if rng.gen_bool(cfg.label_noise) {
                *l = rng.gen_range(0..k as u32);
            }
        }
    }
    let g = builder
        .with_attrs(NodeAttributes::from_sparse_rows(cfg.attr_dim, &rows))
        .with_labels(labels)
        .build();
    (g, CircleAssignment { community, circle, circle_members })
}

/// Disjoint-ish random prototype index sets, one per group. Groups get
/// non-overlapping blocks when the dimensionality allows, falling back to
/// random sampling otherwise.
fn sample_prototypes<R: Rng>(
    groups: usize,
    per_group: usize,
    dim: usize,
    rng: &mut R,
) -> Vec<Vec<u32>> {
    let mut all: Vec<u32> = (0..dim as u32).collect();
    all.shuffle(rng);
    let mut out = Vec::with_capacity(groups);
    if groups * per_group <= dim {
        for gi in 0..groups {
            out.push(all[gi * per_group..(gi + 1) * per_group].to_vec());
        }
    } else {
        for _ in 0..groups {
            let mut set = Vec::with_capacity(per_group);
            for _ in 0..per_group {
                set.push(rng.gen_range(0..dim as u32));
            }
            set.sort_unstable();
            set.dedup();
            out.push(set);
        }
    }
    out
}

/// Knuth's Poisson sampler (fine for small λ).
fn poisson_knuth<R: Rng>(lambda: f64, rng: &mut R) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // guard against pathological λ
        }
    }
}

/// A simple planted-partition graph without circle substructure — a lighter
/// fixture for unit tests across the workspace.
pub fn planted_partition<R: Rng>(
    n: usize,
    k: usize,
    p_in: f64,
    p_out: f64,
    attr_dim: usize,
    rng: &mut R,
) -> AttributedGraph {
    let cfg = SocialCircleConfig {
        num_nodes: n,
        num_communities: k,
        circles_per_community: 1,
        attr_dim,
        // expected edge count of the two-rate SBM
        num_edges: expected_sbm_edges(n, k, p_in, p_out),
        mixing: mixing_from_rates(n, k, p_in, p_out),
        intra_community_share: 0.0,
        proto_attrs: (attr_dim / (2 * k)).clamp(1, 20),
        circle_attrs: 0,
        proto_rate: 0.6,
        circle_rate: 0.0,
        noise_attrs: 1.0,
        proto_overlap: 0.0,
        label_noise: 0.0,
    };
    social_circle_graph(&cfg, rng).0
}

fn expected_sbm_edges(n: usize, k: usize, p_in: f64, p_out: f64) -> usize {
    let nf = n as f64;
    let per_comm = nf / k as f64;
    let intra = k as f64 * per_comm * (per_comm - 1.0) / 2.0 * p_in;
    let inter = (nf * (nf - 1.0) / 2.0 - k as f64 * per_comm * (per_comm - 1.0) / 2.0) * p_out;
    (intra + inter).round().max(1.0) as usize
}

fn mixing_from_rates(n: usize, k: usize, p_in: f64, p_out: f64) -> f64 {
    let total = expected_sbm_edges(n, k, p_in, p_out) as f64;
    let intra = expected_sbm_edges(n, k, p_in, 0.0) as f64;
    ((total - intra) / total).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn generates_requested_shape() {
        let cfg = SocialCircleConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let (g, asg) = social_circle_graph(&cfg, &mut rng);
        assert_eq!(g.num_nodes(), cfg.num_nodes);
        assert_eq!(g.attr_dim(), cfg.attr_dim);
        assert_eq!(g.num_labels(), cfg.num_communities);
        // edge count within a few percent of the target (isolated-node rescue
        // can add a handful).
        let m = g.num_edges() as f64;
        assert!(
            (m - cfg.num_edges as f64).abs() / (cfg.num_edges as f64) < 0.05,
            "edges {m} vs target {}",
            cfg.num_edges
        );
        assert_eq!(asg.community.len(), cfg.num_nodes);
        assert_eq!(asg.circle.len(), cfg.num_nodes);
    }

    #[test]
    fn no_isolated_nodes() {
        let cfg = SocialCircleConfig { num_nodes: 300, num_edges: 320, ..Default::default() };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (g, _) = social_circle_graph(&cfg, &mut rng);
        for v in 0..g.num_nodes() as NodeId {
            assert!(g.degree(v) > 0, "node {v} isolated");
        }
    }

    #[test]
    fn homophily_edges_mostly_intra_community() {
        let cfg = SocialCircleConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (g, asg) = social_circle_graph(&cfg, &mut rng);
        let intra = g
            .edges()
            .filter(|&(u, v, _)| asg.community[u as usize] == asg.community[v as usize])
            .count();
        let frac = intra as f64 / g.num_edges() as f64;
        assert!(frac > 0.75, "intra-community fraction {frac}");
    }

    #[test]
    fn attributes_are_homophilous() {
        let cfg = SocialCircleConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (g, asg) = social_circle_graph(&cfg, &mut rng);
        // mean cosine similarity within communities should exceed across.
        let mut same = (0.0f64, 0usize);
        let mut diff = (0.0f64, 0usize);
        let mut rng2 = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..4000 {
            let u = rng2.gen_range(0..g.num_nodes()) as NodeId;
            let v = rng2.gen_range(0..g.num_nodes()) as NodeId;
            if u == v {
                continue;
            }
            let c = g.attrs().cosine(u, v) as f64;
            if asg.community[u as usize] == asg.community[v as usize] {
                same.0 += c;
                same.1 += 1;
            } else {
                diff.0 += c;
                diff.1 += 1;
            }
        }
        let (ms, md) = (same.0 / same.1 as f64, diff.0 / diff.1 as f64);
        assert!(ms > md + 0.05, "intra {ms} vs inter {md}");
    }

    #[test]
    fn circles_nest_inside_communities() {
        let cfg = SocialCircleConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let (_, asg) = social_circle_graph(&cfg, &mut rng);
        for (members, gid) in asg.circle_members.iter().zip(0u32..) {
            let comm = asg.community[members[0] as usize];
            for &v in members {
                assert_eq!(asg.circle[v as usize], gid);
                assert_eq!(asg.community[v as usize], comm, "circle straddles communities");
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = SocialCircleConfig::default();
        let (g1, _) = social_circle_graph(&cfg, &mut ChaCha8Rng::seed_from_u64(7));
        let (g2, _) = social_circle_graph(&cfg, &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(g1.num_edges(), g2.num_edges());
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
        assert_eq!(g1.attrs(), g2.attrs());
    }

    #[test]
    fn planted_partition_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = planted_partition(200, 4, 0.2, 0.01, 64, &mut rng);
        assert_eq!(g.num_nodes(), 200);
        assert_eq!(g.num_labels(), 4);
        assert!(g.num_edges() > 300);
    }

    #[test]
    fn poisson_mean_reasonable() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mean: f64 =
            (0..20000).map(|_| poisson_knuth(3.0, &mut rng) as f64).sum::<f64>() / 20000.0;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn no_empty_attribute_rows() {
        let cfg = SocialCircleConfig { noise_attrs: 0.0, proto_rate: 0.01, ..Default::default() };
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let (g, _) = social_circle_graph(&cfg, &mut rng);
        for v in 0..g.num_nodes() as NodeId {
            let (idx, _) = g.attrs().row(v);
            assert!(!idx.is_empty(), "node {v} has empty attributes");
        }
    }
}
