//! # coane-datasets
//!
//! Synthetic attributed networks for the CoANE reproduction.
//!
//! The paper evaluates on five downloaded datasets (Cora, Citeseer, Pubmed,
//! WebKB, Flickr). Those downloads are unavailable offline, so this crate
//! generates **attributed social-circle networks** — stochastic block models
//! whose communities (= label classes) are subdivided into *social circles*
//! that are simultaneously densely linked and attribute-coherent. This is
//! exactly the latent structure CoANE claims to exploit (§1, §3.2 of the
//! paper), so the qualitative comparisons in the paper's tables are exercised
//! on the same mechanism. Per-dataset presets match the published Table 1
//! statistics (nodes, attributes, edges, density, labels).
//!
//! See `DESIGN.md` §3 for the full substitution rationale.

pub mod generator;
pub mod presets;
pub mod scale;

pub use generator::{social_circle_graph, SocialCircleConfig};
pub use presets::Preset;
pub use scale::{scale_graph, ScaleConfig, ScaleInfo};
