//! Large-scale synthetic attributed networks (100k–1M+ nodes).
//!
//! The social-circle generator in [`crate::generator`] is calibrated to the
//! paper's Table 1 datasets but tops out around 10⁴ nodes: it keeps a
//! `HashSet` of sampled edges and rejection-samples against it. This module
//! generates graphs three orders of magnitude larger with bounded auxiliary
//! memory, for the streaming/blocked training paths benchmarked by
//! `bench_scale`:
//!
//! * **Power-law degrees** — a Chung–Lu model: node `v` carries an expected-
//!   degree weight `w_v ∝ rank(v)^(−1/(γ−1))`, the classic recipe whose
//!   realized degree sequence follows `P(deg = k) ∝ k^(−γ)`. Ranks are
//!   assigned by a seeded shuffle so hubs land uniformly across communities.
//! * **Planted communities** — nodes are split into `num_communities`
//!   contiguous equal-width blocks (the block index is the ground-truth
//!   label); each sampled edge keeps its second endpoint inside the first
//!   endpoint's community with probability `1 − mixing`.
//! * **Latent-factor attributes** — `num_factors` latent factors each own a
//!   pool of `factor_attrs` characteristic attribute indices; every
//!   community has a factor-mixture peaked on its own factor, and a node
//!   draws its attributes factor-first, so attribute co-occurrence carries
//!   the community structure the same way the paper's datasets do.
//!
//! Everything is driven by one `ChaCha8Rng` seeded from `ScaleConfig::seed`:
//! the same config always produces the same graph, byte for byte. Duplicate
//! edges are removed by sorting packed `u64` endpoint keys — no hash tables,
//! so peak auxiliary memory is `O(m)` with small constants.

use coane_graph::{AttributedGraph, GraphBuilder, NodeAttributes, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Parameters of the large-scale generator. All sampling is fully
/// determined by `seed`.
#[derive(Clone, Copy, Debug)]
pub struct ScaleConfig {
    /// Number of nodes (`n`). Tested from 10³ up to 10⁶+.
    pub num_nodes: usize,
    /// Target mean degree; the realized mean lands slightly below after
    /// duplicate and self-loop removal (within ~10%).
    pub avg_degree: f64,
    /// Power-law exponent `γ` of the degree distribution (`> 1`; social
    /// networks are typically 2–3).
    pub degree_exponent: f64,
    /// Number of planted communities (contiguous node blocks; the block
    /// index is the ground-truth label).
    pub num_communities: usize,
    /// Probability that an edge leaves its source community (0 = perfectly
    /// separable, 1 = no community structure).
    pub mixing: f64,
    /// Attribute dimensionality.
    pub attr_dim: usize,
    /// Attributes drawn per node (before dedup; values are 1.0).
    pub attrs_per_node: usize,
    /// Number of latent attribute factors.
    pub num_factors: usize,
    /// Characteristic attribute indices per factor.
    pub factor_attrs: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        Self {
            num_nodes: 100_000,
            avg_degree: 8.0,
            degree_exponent: 2.5,
            num_communities: 16,
            mixing: 0.1,
            attr_dim: 256,
            attrs_per_node: 8,
            num_factors: 32,
            factor_attrs: 24,
            seed: 42,
        }
    }
}

impl ScaleConfig {
    /// A size-parameterized config: `n` nodes, everything else default with
    /// the community count grown as `√(n)/25` so communities stay a few
    /// thousand nodes wide at every scale.
    pub fn with_nodes(n: usize) -> Self {
        let k = ((n as f64).sqrt() / 25.0).round().max(2.0) as usize;
        Self { num_nodes: n, num_communities: k.min(n / 2).max(1), ..Self::default() }
    }

    fn validate(&self) {
        assert!(self.num_nodes >= 2, "need at least two nodes");
        assert!(
            self.num_communities >= 1 && self.num_communities <= self.num_nodes,
            "num_communities must be in 1..=num_nodes"
        );
        assert!(self.degree_exponent > 1.0, "degree_exponent must exceed 1");
        assert!(self.avg_degree > 0.0, "avg_degree must be positive");
        assert!((0.0..=1.0).contains(&self.mixing), "mixing must be in [0, 1]");
        assert!(self.attr_dim >= 1 && self.attrs_per_node >= 1, "need attributes");
        assert!(
            self.num_factors >= 1 && self.factor_attrs >= 1 && self.factor_attrs <= self.attr_dim,
            "factor pools must be non-empty and fit in attr_dim"
        );
    }
}

/// Ground truth and sampling telemetry returned beside the graph, consumed
/// by the statistical tests (`crates/datasets/tests/statistics.rs`).
#[derive(Clone, Debug)]
pub struct ScaleInfo {
    /// Community (= label) per node.
    pub community: Vec<u32>,
    /// Chung–Lu expected-degree weight per node (unnormalized).
    pub weights: Vec<f64>,
    /// How often each node was drawn as a candidate-edge endpoint, counted
    /// over *all* candidate draws (self-loops included, duplicates
    /// included). Marginally each endpoint is distributed exactly
    /// `∝ weights`, which is what the chi-square GOF test checks.
    pub endpoint_counts: Vec<u64>,
    /// Candidate edges drawn (2× this many endpoints).
    pub candidate_draws: usize,
    /// Distinct non-loop edges that survived dedup.
    pub sampled_edges: usize,
    /// Isolated nodes rescued with one extra in-community edge.
    pub rescued: usize,
}

/// Community of node `v` under `k` contiguous equal-width blocks. Inverse
/// of [`block_range`]: `community_of(v) == c` iff `block_range(c)` contains
/// `v`, for every `c`.
#[inline]
fn community_of(v: usize, n: usize, k: usize) -> usize {
    v * k / n
}

/// Node range of community `c`.
#[inline]
fn block_range(c: usize, n: usize, k: usize) -> std::ops::Range<usize> {
    (c * n).div_ceil(k)..((c + 1) * n).div_ceil(k)
}

/// Draws an index in `lo..hi` with probability proportional to the weight
/// prefix sums `cum` (global prefix over all nodes).
#[inline]
fn draw_weighted(cum: &[f64], lo: usize, hi: usize, rng: &mut ChaCha8Rng) -> usize {
    let base = if lo == 0 { 0.0 } else { cum[lo - 1] };
    let x = base + rng.gen::<f64>() * (cum[hi - 1] - base);
    lo + cum[lo..hi].partition_point(|&c| c <= x).min(hi - lo - 1)
}

/// Generates a seeded power-law / planted-community / latent-factor
/// attributed graph. Deterministic: the same `cfg` yields the same graph.
pub fn scale_graph(cfg: &ScaleConfig) -> (AttributedGraph, ScaleInfo) {
    cfg.validate();
    let n = cfg.num_nodes;
    let k = cfg.num_communities;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    // Power-law expected-degree weights: rank r gets (r+1)^(−1/(γ−1)),
    // ranks spread uniformly over nodes by a seeded shuffle so every
    // community holds its share of hubs.
    let alpha = 1.0 / (cfg.degree_exponent - 1.0);
    let mut weights: Vec<f64> = (0..n).map(|r| ((r + 1) as f64).powf(-alpha)).collect();
    weights.shuffle(&mut rng);
    let mut cum = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for &w in &weights {
        acc += w;
        cum.push(acc);
    }

    let community: Vec<u32> = (0..n).map(|v| community_of(v, n, k) as u32).collect();

    // Candidate edges: endpoint u globally weight-proportional; endpoint v
    // inside u's community with probability 1 − mixing, global otherwise.
    // Oversample so the target edge count survives duplicate removal, then
    // sort+dedup packed u64 keys (bounded memory, no hashing).
    let target_m = ((n as f64 * cfg.avg_degree) / 2.0).round() as usize;
    let draws = target_m + target_m / 6 + 16;
    let mut endpoint_counts = vec![0u64; n];
    let mut keys: Vec<u64> = Vec::with_capacity(draws);
    for _ in 0..draws {
        let u = draw_weighted(&cum, 0, n, &mut rng);
        let v = if rng.gen::<f64>() < cfg.mixing {
            draw_weighted(&cum, 0, n, &mut rng)
        } else {
            let r = block_range(community[u] as usize, n, k);
            draw_weighted(&cum, r.start, r.end, &mut rng)
        };
        endpoint_counts[u] += 1;
        endpoint_counts[v] += 1;
        if u != v {
            let (a, b) = (u.min(v) as u64, u.max(v) as u64);
            keys.push(a << 32 | b);
        }
    }
    keys.sort_unstable();
    keys.dedup();
    let sampled_edges = keys.len();

    let mut degree = vec![0u32; n];
    for &key in &keys {
        degree[(key >> 32) as usize] += 1;
        degree[(key & 0xFFFF_FFFF) as usize] += 1;
    }
    // Rescue isolated nodes with one edge to the next node in their
    // community (wrapping), so every walk has somewhere to go.
    let mut rescued = 0usize;
    let mut rescue_keys: Vec<u64> = Vec::new();
    for v in 0..n {
        if degree[v] == 0 {
            let r = block_range(community[v] as usize, n, k);
            if r.len() < 2 {
                continue; // single-node community: genuinely isolated
            }
            let u = if v + 1 < r.end { v + 1 } else { r.start };
            let (a, b) = (v.min(u) as u64, v.max(u) as u64);
            rescue_keys.push(a << 32 | b);
            rescued += 1;
        }
    }
    // A rescue partner may itself have been isolated (mutual rescue pair):
    // dedup the combined key set to keep every edge weight exactly 1.0.
    keys.extend_from_slice(&rescue_keys);
    keys.sort_unstable();
    keys.dedup();

    // Latent-factor attributes. Factor f owns `factor_attrs` characteristic
    // indices; community c's mixture puts 60% mass on factor c mod F and
    // spreads the rest uniformly. A node draws attrs factor-first.
    let factor_pool: Vec<Vec<u32>> = (0..cfg.num_factors)
        .map(|_| {
            (0..cfg.factor_attrs).map(|_| rng.gen_range(0..cfg.attr_dim) as u32).collect::<Vec<_>>()
        })
        .collect();
    let own_mass = 0.6f64;
    let mut attr_rows: Vec<Vec<(u32, f32)>> = Vec::with_capacity(n);
    for &comm in community.iter().take(n) {
        let home = comm as usize % cfg.num_factors;
        let mut row: Vec<u32> = Vec::with_capacity(cfg.attrs_per_node);
        for _ in 0..cfg.attrs_per_node {
            let f = if cfg.num_factors == 1 || rng.gen::<f64>() < own_mass {
                home
            } else {
                rng.gen_range(0..cfg.num_factors)
            };
            row.push(factor_pool[f][rng.gen_range(0..cfg.factor_attrs)]);
        }
        row.sort_unstable();
        row.dedup();
        attr_rows.push(row.into_iter().map(|a| (a, 1.0f32)).collect());
    }

    let mut builder = GraphBuilder::new(n, cfg.attr_dim);
    for &key in &keys {
        builder.add_edge((key >> 32) as NodeId, (key & 0xFFFF_FFFF) as NodeId, 1.0);
    }
    let graph = builder
        .with_attrs(NodeAttributes::from_sparse_rows(cfg.attr_dim, &attr_rows))
        .with_labels(community.clone())
        .build();
    let info = ScaleInfo {
        community,
        weights,
        endpoint_counts,
        candidate_draws: draws,
        sampled_edges,
        rescued,
    };
    (graph, info)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaleConfig {
        ScaleConfig {
            num_nodes: 2_000,
            avg_degree: 8.0,
            num_communities: 4,
            attr_dim: 64,
            attrs_per_node: 5,
            num_factors: 8,
            factor_attrs: 10,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (g1, i1) = scale_graph(&tiny());
        let (g2, i2) = scale_graph(&tiny());
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(i1.endpoint_counts, i2.endpoint_counts);
        assert_eq!(g1.labels(), g2.labels());
        for v in 0..g1.num_nodes() as NodeId {
            assert_eq!(g1.neighbors_of(v), g2.neighbors_of(v));
            assert_eq!(g1.attrs().row(v), g2.attrs().row(v));
        }
    }

    #[test]
    fn seed_changes_graph() {
        let (g1, _) = scale_graph(&tiny());
        let (g2, _) = scale_graph(&ScaleConfig { seed: 43, ..tiny() });
        assert_ne!(
            (0..g1.num_nodes() as NodeId).map(|v| g1.neighbors_of(v).to_vec()).collect::<Vec<_>>(),
            (0..g2.num_nodes() as NodeId).map(|v| g2.neighbors_of(v).to_vec()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn mean_degree_near_target() {
        let (g, _) = scale_graph(&tiny());
        let mean = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!((mean - 8.0).abs() / 8.0 < 0.15, "mean degree {mean} vs target 8");
    }

    #[test]
    fn no_isolated_nodes_and_unit_weights() {
        let (g, _) = scale_graph(&tiny());
        for v in 0..g.num_nodes() as NodeId {
            assert!(!g.neighbors_of(v).is_empty(), "node {v} isolated");
            assert!(g.weights_of(v).iter().all(|&w| w == 1.0), "node {v} non-unit weight");
        }
    }

    #[test]
    fn labels_are_contiguous_blocks() {
        let cfg = tiny();
        let (g, info) = scale_graph(&cfg);
        let labels = g.labels().unwrap();
        assert_eq!(labels, &info.community[..]);
        let mut prev = 0u32;
        for &l in labels {
            assert!(l >= prev && (l as usize) < cfg.num_communities, "labels not block-sorted");
            prev = l;
        }
        assert_eq!(prev as usize, cfg.num_communities - 1, "some community empty");
    }

    #[test]
    fn hubs_exist_degrees_heavy_tailed() {
        let (g, _) = scale_graph(&tiny());
        let max_deg =
            (0..g.num_nodes() as NodeId).map(|v| g.neighbors_of(v).len()).max().unwrap() as f64;
        let mean = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(max_deg > 8.0 * mean, "no hubs: max {max_deg}, mean {mean}");
    }

    #[test]
    fn mixing_controls_cross_community_edges() {
        let frac = |mixing: f64| {
            let (g, info) = scale_graph(&ScaleConfig { mixing, ..tiny() });
            let mut cross = 0usize;
            let mut total = 0usize;
            for v in 0..g.num_nodes() as NodeId {
                for &u in g.neighbors_of(v) {
                    total += 1;
                    if info.community[v as usize] != info.community[u as usize] {
                        cross += 1;
                    }
                }
            }
            cross as f64 / total as f64
        };
        let (lo, hi) = (frac(0.05), frac(0.5));
        assert!(lo < 0.15, "low mixing leaks {lo}");
        assert!(hi > lo + 0.2, "mixing knob inert: {lo} vs {hi}");
    }

    #[test]
    fn attributes_concentrate_within_communities() {
        // Nodes of the same community share factor pools, so mean attribute
        // overlap must be higher intra-community than inter-community.
        let (g, info) = scale_graph(&tiny());
        let overlap = |a: NodeId, b: NodeId| {
            let (ia, _) = g.attrs().row(a);
            let (ib, _) = g.attrs().row(b);
            ia.iter().filter(|x| ib.contains(x)).count() as f64
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = g.num_nodes();
        let (mut same, mut ns) = (0.0, 0usize);
        let (mut diff, mut nd) = (0.0, 0usize);
        for _ in 0..4_000 {
            let a = rng.gen_range(0..n) as NodeId;
            let b = rng.gen_range(0..n) as NodeId;
            if info.community[a as usize] == info.community[b as usize] {
                same += overlap(a, b);
                ns += 1;
            } else {
                diff += overlap(a, b);
                nd += 1;
            }
        }
        let (ms, md) = (same / ns as f64, diff / nd as f64);
        assert!(ms > md, "attribute overlap carries no community signal: {ms} vs {md}");
    }

    #[test]
    fn with_nodes_scales_communities() {
        let small = ScaleConfig::with_nodes(10_000);
        let big = ScaleConfig::with_nodes(1_000_000);
        assert!(big.num_communities > small.num_communities);
        scale_graph(&ScaleConfig { num_nodes: 500, ..ScaleConfig::with_nodes(500) });
    }
}
