//! Per-dataset presets calibrated to Table 1 of the paper.
//!
//! | Dataset          | #nodes | #attrs | #edges | density | #labels |
//! |------------------|--------|--------|--------|---------|---------|
//! | Cora             |   2708 |   1433 |   5278 | 0.0014  | 7       |
//! | Citeseer         |   3312 |   3703 |   4660 | 0.0008  | 6       |
//! | Pubmed           |  19717 |    500 |  44327 | 0.0002  | 3       |
//! | WebKB-Cornell    |    195 |   1703 |    286 | 0.0151  | 5       |
//! | WebKB-Texas      |    187 |   1703 |    298 | 0.0171  | 5       |
//! | WebKB-Washington |    230 |   1703 |    417 | 0.0158  | 5       |
//! | WebKB-Wisconsin  |    265 |   1703 |    479 | 0.0137  | 5       |
//! | Flickr           |   7575 |  12047 | 239738 | 0.0084  | 9       |
//!
//! `generate` produces the full-size network; `generate_scaled` shrinks the
//! node count (keeping average degree and label count) for fast experiments
//! and CI. Every harness binary accepts a `--scale` flag wired to the latter.

use coane_graph::AttributedGraph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::generator::{social_circle_graph, CircleAssignment, SocialCircleConfig};

/// The five dataset families of the paper (WebKB split into its four
/// subnetworks, as in Table 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Preset {
    /// Cora citation network.
    Cora,
    /// Citeseer citation network.
    Citeseer,
    /// Pubmed citation network.
    Pubmed,
    /// WebKB – Cornell.
    WebKbCornell,
    /// WebKB – Texas.
    WebKbTexas,
    /// WebKB – Washington.
    WebKbWashington,
    /// WebKB – Wisconsin.
    WebKbWisconsin,
    /// Flickr social network.
    Flickr,
}

impl Preset {
    /// All presets in Table 1 order.
    pub const ALL: [Preset; 8] = [
        Preset::Cora,
        Preset::Citeseer,
        Preset::Pubmed,
        Preset::WebKbCornell,
        Preset::WebKbTexas,
        Preset::WebKbWashington,
        Preset::WebKbWisconsin,
        Preset::Flickr,
    ];

    /// The four WebKB subnetworks (Table 5).
    pub const WEBKB: [Preset; 4] =
        [Preset::WebKbCornell, Preset::WebKbTexas, Preset::WebKbWashington, Preset::WebKbWisconsin];

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Cora => "cora",
            Preset::Citeseer => "citeseer",
            Preset::Pubmed => "pubmed",
            Preset::WebKbCornell => "webkb-cornell",
            Preset::WebKbTexas => "webkb-texas",
            Preset::WebKbWashington => "webkb-washington",
            Preset::WebKbWisconsin => "webkb-wisconsin",
            Preset::Flickr => "flickr",
        }
    }

    /// Parses a name produced by [`Preset::name`].
    pub fn parse(s: &str) -> Option<Preset> {
        Preset::ALL.into_iter().find(|p| p.name() == s)
    }

    /// Table 1 statistics `(#nodes, #attrs, #edges, #labels)`.
    pub fn table1_stats(self) -> (usize, usize, usize, usize) {
        match self {
            Preset::Cora => (2708, 1433, 5278, 7),
            Preset::Citeseer => (3312, 3703, 4660, 6),
            Preset::Pubmed => (19717, 500, 44327, 3),
            Preset::WebKbCornell => (195, 1703, 286, 5),
            Preset::WebKbTexas => (187, 1703, 298, 5),
            Preset::WebKbWashington => (230, 1703, 417, 5),
            Preset::WebKbWisconsin => (265, 1703, 479, 5),
            Preset::Flickr => (7575, 12047, 239738, 9),
        }
    }

    /// Generator configuration at `scale ∈ (0, 1]` of the full node count.
    /// Average degree, attribute dimensionality and label count are kept.
    pub fn config(self, scale: f64) -> SocialCircleConfig {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let (n, d, m, k) = self.table1_stats();
        let n_scaled = ((n as f64 * scale).round() as usize).max(k * 8);
        let m_scaled = ((m as f64 * n_scaled as f64 / n as f64).round() as usize).max(n_scaled);
        // Flickr is a dense social network with larger, fuzzier groups;
        // citation networks are sparse with crisper topical circles.
        let (mixing, circles) = match self {
            Preset::Flickr => (0.35, 5),
            Preset::Pubmed => (0.22, 3),
            _ => (0.2, 3),
        };
        SocialCircleConfig {
            num_nodes: n_scaled,
            num_communities: k,
            circles_per_community: circles,
            attr_dim: d,
            num_edges: m_scaled,
            mixing,
            intra_community_share: 0.6,
            proto_attrs: (d / (k * 2)).clamp(4, 40),
            circle_attrs: (d / (k * circles * 2)).clamp(2, 20),
            proto_rate: 0.25,
            circle_rate: 0.35,
            noise_attrs: 10.0,
            proto_overlap: 0.55,
            label_noise: 0.15,
        }
    }

    /// Generates the full-size network (matching Table 1 statistics).
    pub fn generate(self, seed: u64) -> (AttributedGraph, CircleAssignment) {
        self.generate_scaled(1.0, seed)
    }

    /// Generates a scaled-down replica for fast experiments.
    pub fn generate_scaled(self, scale: f64, seed: u64) -> (AttributedGraph, CircleAssignment) {
        let cfg = self.config(scale);
        // Mix the preset into the seed so different presets with the same
        // seed don't share randomness.
        let mixed = seed ^ (self as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = ChaCha8Rng::seed_from_u64(mixed);
        social_circle_graph(&cfg, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for p in Preset::ALL {
            assert_eq!(Preset::parse(p.name()), Some(p));
        }
        assert_eq!(Preset::parse("nope"), None);
    }

    #[test]
    fn scaled_cora_matches_density() {
        let (g, _) = Preset::Cora.generate_scaled(0.2, 1);
        let (n, d, m, k) = Preset::Cora.table1_stats();
        assert_eq!(g.attr_dim(), d);
        assert_eq!(g.num_labels(), k);
        let expect_n = (n as f64 * 0.2).round() as usize;
        assert_eq!(g.num_nodes(), expect_n);
        // average degree preserved within 10%
        let avg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        let want = 2.0 * m as f64 / n as f64;
        assert!((avg - want).abs() / want < 0.1, "avg degree {avg} vs {want}");
    }

    #[test]
    fn full_webkb_cornell_matches_table1() {
        let (g, _) = Preset::WebKbCornell.generate(3);
        let (n, d, m, k) = Preset::WebKbCornell.table1_stats();
        assert_eq!(g.num_nodes(), n);
        assert_eq!(g.attr_dim(), d);
        assert_eq!(g.num_labels(), k);
        let rel = (g.num_edges() as f64 - m as f64).abs() / m as f64;
        assert!(rel < 0.1, "edges {} vs {m}", g.num_edges());
    }

    #[test]
    fn different_presets_different_randomness() {
        let (a, _) = Preset::WebKbCornell.generate_scaled(1.0, 5);
        let (b, _) = Preset::WebKbTexas.generate_scaled(1.0, 5);
        assert_ne!(a.num_nodes(), b.num_nodes());
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        Preset::Cora.config(0.0);
    }
}
