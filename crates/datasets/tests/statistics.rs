//! Statistical correctness of the million-node scale generator: the
//! Chung–Lu candidate draws must hit each node with probability exactly
//! proportional to its power-law weight, and the realized graph must keep
//! the heavy tail the weights promise.
//!
//! The chi-square machinery mirrors `coane-walks/tests/statistics.rs`: fixed
//! seeds make the tests deterministic, and the p ≈ 0.001 significance level
//! keeps the committed seeds far from the rejection boundary.
//!
//! The test targets `ScaleInfo::endpoint_counts` — every candidate endpoint
//! drawn, *before* self-loop rejection, dedup, and isolated-node rescue —
//! because that is the quantity with a closed-form law: each endpoint's
//! marginal is exactly `w_v / W`. (The community-conditioned second draw
//! telescopes: Σ_C P(u ∈ C)·w_v·[v ∈ C]/W_C = w_v/W.) Realized degrees are
//! a deduplicated, rescued transform of these draws with no simple closed
//! form, so they get shape assertions rather than a GOF test.

use coane_datasets::{scale_graph, ScaleConfig};

/// Pearson's chi-square statistic for observed counts vs expected
/// probabilities (which must sum to ~1). Panics if any expected cell count
/// is below 5 — the classical validity threshold for the asymptotic test.
fn chi_square_stat(observed: &[u64], expected_probs: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected_probs.len());
    let total: u64 = observed.iter().sum();
    let mut stat = 0.0f64;
    for (&o, &p) in observed.iter().zip(expected_probs) {
        let e = p * total as f64;
        assert!(e >= 5.0, "expected cell count {e} < 5; coarsen the bins");
        stat += (o as f64 - e) * (o as f64 - e) / e;
    }
    stat
}

/// Approximate upper critical value of the chi-square distribution via the
/// Wilson–Hilferty cube-root normal approximation.
fn chi_square_critical(df: usize, z: f64) -> f64 {
    let k = df as f64;
    let t = 1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt();
    k * t * t * t
}

/// z-quantile for p ≈ 0.001 (one-sided), i.e. a 99.9% acceptance region.
const Z_999: f64 = 3.0902;

fn assert_gof(name: &str, observed: &[u64], expected_probs: &[f64]) {
    let stat = chi_square_stat(observed, expected_probs);
    let crit = chi_square_critical(observed.len() - 1, Z_999);
    assert!(
        stat < crit,
        "{name}: chi-square {stat:.2} exceeds critical {crit:.2} (df {})",
        observed.len() - 1
    );
}

#[test]
fn endpoint_draws_follow_power_law_weights() {
    let cfg = ScaleConfig { avg_degree: 12.0, ..ScaleConfig::with_nodes(4_000) };
    let (_, info) = scale_graph(&cfg);
    assert_eq!(info.endpoint_counts.len(), 4_000);
    let total_draws: u64 = info.endpoint_counts.iter().sum();
    assert_eq!(total_draws as usize, 2 * info.candidate_draws);

    // Bin weight-ordered nodes into equal-count groups: the head groups
    // carry most of the mass (testing the hubs precisely), the tail groups
    // aggregate enough nodes to clear the ≥5-expected-count threshold.
    let mut order: Vec<usize> = (0..info.weights.len()).collect();
    order.sort_by(|&a, &b| info.weights[b].partial_cmp(&info.weights[a]).unwrap());
    let total_weight: f64 = info.weights.iter().sum();
    const GROUP: usize = 100;
    let mut observed = Vec::new();
    let mut expected = Vec::new();
    for group in order.chunks(GROUP) {
        observed.push(group.iter().map(|&v| info.endpoint_counts[v]).sum::<u64>());
        expected.push(group.iter().map(|&v| info.weights[v]).sum::<f64>() / total_weight);
    }
    assert_gof("scale endpoint draws", &observed, &expected);
}

#[test]
fn endpoint_law_is_mixing_invariant() {
    // The community-conditioned draw must not distort the marginal: strongly
    // assortative and fully mixed graphs pass the same GOF test.
    for mixing in [0.0, 0.5, 1.0] {
        let cfg = ScaleConfig { mixing, ..ScaleConfig::with_nodes(3_000) };
        let (_, info) = scale_graph(&cfg);
        let mut order: Vec<usize> = (0..info.weights.len()).collect();
        order.sort_by(|&a, &b| info.weights[b].partial_cmp(&info.weights[a]).unwrap());
        let total_weight: f64 = info.weights.iter().sum();
        let mut observed = Vec::new();
        let mut expected = Vec::new();
        for group in order.chunks(150) {
            observed.push(group.iter().map(|&v| info.endpoint_counts[v]).sum::<u64>());
            expected.push(group.iter().map(|&v| info.weights[v]).sum::<f64>() / total_weight);
        }
        assert_gof(&format!("mixing={mixing}"), &observed, &expected);
    }
}

#[test]
fn realized_degrees_keep_the_heavy_tail() {
    let cfg = ScaleConfig { avg_degree: 10.0, ..ScaleConfig::with_nodes(20_000) };
    let (g, info) = scale_graph(&cfg);
    let n = g.num_nodes();
    let mut degrees: Vec<usize> = (0..n as u32).map(|v| g.degree(v)).collect();
    let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
    assert!((mean - 10.0).abs() / 10.0 < 0.2, "mean degree {mean} far from target 10");

    degrees.sort_unstable_by(|a, b| b.cmp(a));
    // Power-law shape, not Poisson: the top 1% of nodes carry a far larger
    // degree share than the 1% a homogeneous graph would give them, and the
    // max degree towers over the mean.
    let top_share =
        degrees[..n / 100].iter().sum::<usize>() as f64 / degrees.iter().sum::<usize>() as f64;
    assert!(top_share > 0.05, "top-1% degree share {top_share:.4} looks homogeneous");
    assert!(degrees[0] as f64 > 10.0 * mean, "max degree {} not hub-like", degrees[0]);

    // Dedup + rescue stay a small correction: candidate draws overshoot the
    // realized edge count only modestly, and rescues are rare.
    assert!(info.sampled_edges as f64 >= 0.7 * info.candidate_draws as f64);
    assert!(info.rescued < n / 100, "{} rescues in a {}-node graph", info.rescued, n);
}
