//! Every metric checked against values worked out by hand — the expected
//! numbers below are written as the arithmetic of the derivation, not as
//! opaque decimals, so the working is auditable in place.

use coane_eval::{average_precision, link_prediction_auc, macro_f1, micro_f1, nmi, roc_auc};

// ── F1 ─────────────────────────────────────────────────────────────────────

/// truth  [0, 0, 1, 1, 2, 2]
/// pred   [0, 2, 1, 0, 2, 2]
///
/// class 0: tp=1 (pos 0), fp=1 (pos 3), fn=1 (pos 1) → F1 = 2·1/(2·1+1+1) = 1/2
/// class 1: tp=1 (pos 2), fp=0, fn=1 (pos 3)         → F1 = 2·1/(2·1+0+1) = 2/3
/// class 2: tp=2 (pos 4,5), fp=1 (pos 1), fn=0       → F1 = 2·2/(2·2+1+0) = 4/5
#[test]
fn f1_three_class_hand_computed() {
    let t = [0u32, 0, 1, 1, 2, 2];
    let p = [0u32, 2, 1, 0, 2, 2];
    let macro_want = (1.0 / 2.0 + 2.0 / 3.0 + 4.0 / 5.0) / 3.0;
    assert!((macro_f1(&t, &p, 3) - macro_want).abs() < 1e-12);
    // pooled: tp=4, fp=2, fn=2 → micro-F1 = 2·4/(2·4+2+2) = 2/3 = accuracy 4/6
    let micro_want = 2.0 * 4.0 / (2.0 * 4.0 + 2.0 + 2.0);
    assert!((micro_f1(&t, &p, 3) - micro_want).abs() < 1e-12);
    assert!((micro_want - 4.0 / 6.0).abs() < 1e-15, "micro-F1 must equal accuracy");
}

/// A class that never occurs in truth or prediction contributes F1 = 0 to the
/// macro average (scikit-learn convention): same counts as above but divided
/// over 4 classes instead of 3.
#[test]
fn macro_f1_counts_absent_classes_as_zero() {
    let t = [0u32, 0, 1, 1, 2, 2];
    let p = [0u32, 2, 1, 0, 2, 2];
    let want = (1.0 / 2.0 + 2.0 / 3.0 + 4.0 / 5.0 + 0.0) / 4.0;
    assert!((macro_f1(&t, &p, 4) - want).abs() < 1e-12);
}

// ── NMI ────────────────────────────────────────────────────────────────────

/// a = [0, 0, 1, 1], b = [0, 1, 1, 1]; n = 4.
///
/// marginals: p_a = (1/2, 1/2), p_b = (1/4, 3/4)
/// joint: p(0,0)=1/4, p(0,1)=1/4, p(1,1)=1/2
/// I = 1/4·ln( (1/4)/(1/2·1/4) ) + 1/4·ln( (1/4)/(1/2·3/4) ) + 1/2·ln( (1/2)/(1/2·3/4) )
///   = 1/4·ln 2 + 1/4·ln(2/3) + 1/2·ln(4/3)
/// H(a) = ln 2,   H(b) = −(1/4·ln(1/4) + 3/4·ln(3/4))
/// NMI = 2I / (H(a) + H(b))
#[test]
fn nmi_hand_computed() {
    let a = [0u32, 0, 1, 1];
    let b = [0u32, 1, 1, 1];
    let mi = 0.25 * 2.0f64.ln() + 0.25 * (2.0f64 / 3.0).ln() + 0.5 * (4.0f64 / 3.0).ln();
    let ha = 2.0f64.ln();
    let hb = -(0.25 * 0.25f64.ln() + 0.75 * 0.75f64.ln());
    let want = 2.0 * mi / (ha + hb);
    assert!((nmi(&a, &b) - want).abs() < 1e-12, "nmi {} want {want}", nmi(&a, &b));
}

// ── ROC-AUC ────────────────────────────────────────────────────────────────

/// scores [0.1, 0.4, 0.35, 0.8], labels [−, −, +, +].
///
/// Ascending ranks: 0.1→1, 0.35→2, 0.4→3, 0.8→4. Positive ranks {2, 4},
/// sum = 6. AUC = (6 − 2·3/2) / (2·2) = 3/4. Equivalently: of the 4
/// (pos, neg) pairs, 3 are correctly ordered (0.35 < 0.4 is the one miss).
#[test]
fn auc_hand_computed() {
    let scores = [0.1, 0.4, 0.35, 0.8];
    let labels = [false, false, true, true];
    assert!((roc_auc(&scores, &labels) - 3.0 / 4.0).abs() < 1e-12);
}

/// One positive tied with one negative: the tied pair contributes 1/2 via
/// midranks. Pairs: (0.9,+ vs 0.5,−) ordered, (0.5,+ vs 0.5,−) tied.
/// AUC = (1 + 1/2) / 2 = 3/4.
#[test]
fn auc_tie_hand_computed() {
    let scores = [0.9, 0.5, 0.5];
    let labels = [true, true, false];
    assert!((roc_auc(&scores, &labels) - 3.0 / 4.0).abs() < 1e-12);
}

// ── Average precision ──────────────────────────────────────────────────────

/// scores [0.9, 0.8, 0.7, 0.6], labels [+, −, +, −].
///
/// Ranked: rank 1 is a hit (precision 1/1), rank 3 is a hit (precision 2/3).
/// AP = (1 + 2/3) / 2 = 5/6.
#[test]
fn average_precision_hand_computed() {
    let scores = [0.9, 0.8, 0.7, 0.6];
    let labels = [true, false, true, false];
    assert!((average_precision(&scores, &labels) - 5.0 / 6.0).abs() < 1e-12);
}

/// Perfect ranking gives AP = 1; worst ranking of 1 positive among n items
/// gives AP = 1/n.
#[test]
fn average_precision_extremes() {
    let labels_perfect = [true, true, false, false];
    assert!((average_precision(&[0.9, 0.8, 0.2, 0.1], &labels_perfect) - 1.0).abs() < 1e-12);
    let labels_worst = [false, false, false, true];
    assert!((average_precision(&[0.9, 0.8, 0.7, 0.1], &labels_worst) - 1.0 / 4.0).abs() < 1e-12);
}

/// AP is invariant to any strictly increasing transform of the scores.
#[test]
fn average_precision_monotone_invariant() {
    let scores = [0.15, 0.7, 0.3, 0.55, 0.02];
    let labels = [false, true, true, false, true];
    let a1 = average_precision(&scores, &labels);
    let transformed: Vec<f64> = scores.iter().map(|&s| (3.0 * s).exp() + 7.0).collect();
    let a2 = average_precision(&transformed, &labels);
    assert!((a1 - a2).abs() < 1e-12);
}

#[test]
#[should_panic(expected = "at least one positive")]
fn average_precision_rejects_all_negative() {
    average_precision(&[0.1, 0.2], &[false, false]);
}

// ── Link prediction end-to-end ─────────────────────────────────────────────

/// A planted 2-block embedding where same-block pairs have strongly positive
/// Hadamard products: the logistic edge classifier must rank held-out
/// same-block (positive) pairs above cross-block (negative) ones, giving
/// AUC = 1 and AP = 1 on this separable instance.
#[test]
fn link_prediction_separable_case() {
    // 8 nodes, dim 2: block A = (+1, +1)-ish, block B = (−1, +1)-ish, with
    // small deterministic jitter so no two nodes are identical.
    let dim = 2usize;
    let mut embedding = Vec::with_capacity(8 * dim);
    for i in 0..8 {
        let sign = if i < 4 { 1.0f32 } else { -1.0f32 };
        let jitter = 0.01 * i as f32;
        embedding.extend_from_slice(&[sign * (1.0 + jitter), 1.0 - jitter]);
    }
    let train_pos: &[(u32, u32)] = &[(0, 1), (1, 2), (4, 5), (5, 6)];
    let train_neg: &[(u32, u32)] = &[(0, 4), (1, 5), (2, 6), (3, 7)];
    let test_pos: &[(u32, u32)] = &[(2, 3), (6, 7)];
    let test_neg: &[(u32, u32)] = &[(0, 7), (3, 4)];
    let auc = link_prediction_auc(&embedding, dim, train_pos, train_neg, test_pos, test_neg);
    assert!((auc - 1.0).abs() < 1e-9, "separable link prediction should be perfect, got {auc}");
}
