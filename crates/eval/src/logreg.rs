//! L2-regularized binary logistic regression — the downstream classifier the
//! paper uses for node classification (one-vs-rest) and link prediction,
//! "following the common-used settings" of node2vec.
//!
//! Trained full-batch with gradient descent plus momentum; features are
//! standardized internally for optimization stability (the fitted scaler is
//! applied at prediction time, so the caller sees raw-feature semantics).

/// A fitted binary logistic-regression model.
#[derive(Clone, Debug)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    mean: Vec<f64>,
    std: Vec<f64>,
    /// L2 penalty strength.
    pub l2: f64,
}

fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Fits on row-major `features` (`n × dim`) with binary `labels`.
    ///
    /// # Panics
    /// Panics on shape mismatch or empty input.
    #[allow(clippy::needless_range_loop)] // indexed form is clearer in this kernel
    pub fn fit(features: &[f64], dim: usize, labels: &[bool], l2: f64) -> Self {
        let n = labels.len();
        assert!(n > 0 && dim > 0, "empty training set");
        assert_eq!(features.len(), n * dim, "features shape");
        // standardize
        let mut mean = vec![0.0f64; dim];
        for row in features.chunks_exact(dim) {
            for (m, &x) in mean.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut std = vec![0.0f64; dim];
        for row in features.chunks_exact(dim) {
            for ((s, &x), &m) in std.iter_mut().zip(row).zip(&mean) {
                *s += (x - m) * (x - m);
            }
        }
        for s in &mut std {
            *s = (*s / n as f64).sqrt().max(1e-9);
        }
        let x_of = |i: usize, j: usize| (features[i * dim + j] - mean[j]) / std[j];

        let mut w = vec![0.0f64; dim];
        let mut b = 0.0f64;
        let mut vw = vec![0.0f64; dim];
        let mut vb = 0.0f64;
        let lr = 0.5;
        let momentum = 0.9;
        let iters = 300;
        let mut gw = vec![0.0f64; dim];
        for _ in 0..iters {
            gw.iter_mut().for_each(|g| *g = 0.0);
            let mut gb = 0.0f64;
            for i in 0..n {
                let mut logit = b;
                for (j, wj) in w.iter().enumerate() {
                    logit += wj * x_of(i, j);
                }
                let err = sigmoid(logit) - if labels[i] { 1.0 } else { 0.0 };
                for (j, g) in gw.iter_mut().enumerate() {
                    *g += err * x_of(i, j);
                }
                gb += err;
            }
            let inv_n = 1.0 / n as f64;
            for ((wj, g), v) in w.iter_mut().zip(&gw).zip(&mut vw) {
                let grad = g * inv_n + l2 * *wj;
                *v = momentum * *v - lr * grad;
                *wj += *v;
            }
            vb = momentum * vb - lr * (gb * inv_n);
            b += vb;
        }
        Self { weights: w, bias: b, mean, std, l2 }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// Decision-function value (log-odds) for one raw feature row.
    pub fn decision(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.dim());
        let mut logit = self.bias;
        for (j, &w) in self.weights.iter().enumerate() {
            logit += w * (row[j] - self.mean[j]) / self.std[j];
        }
        logit
    }

    /// Predicted probability of the positive class.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        sigmoid(self.decision(row))
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, row: &[f64]) -> bool {
        self.decision(row) >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn separable_data(n: usize, seed: u64) -> (Vec<f64>, Vec<bool>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut x = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let pos = i % 2 == 0;
            let cx = if pos { 2.0 } else { -2.0 };
            x.push(cx + rng.gen_range(-0.5..0.5));
            x.push(rng.gen_range(-1.0..1.0));
            y.push(pos);
        }
        (x, y)
    }

    #[test]
    fn separates_linear_data() {
        let (x, y) = separable_data(200, 0);
        let model = LogisticRegression::fit(&x, 2, &y, 1e-4);
        let correct = y
            .iter()
            .enumerate()
            .filter(|&(i, &l)| model.predict(&x[i * 2..i * 2 + 2]) == l)
            .count();
        assert!(correct >= 198, "only {correct}/200 correct");
    }

    #[test]
    fn probabilities_calibrated_direction() {
        let (x, y) = separable_data(100, 1);
        let model = LogisticRegression::fit(&x, 2, &y, 1e-4);
        assert!(model.predict_proba(&[3.0, 0.0]) > 0.9);
        assert!(model.predict_proba(&[-3.0, 0.0]) < 0.1);
    }

    #[test]
    fn l2_shrinks_weights() {
        let (x, y) = separable_data(100, 2);
        let loose = LogisticRegression::fit(&x, 2, &y, 1e-6);
        let tight = LogisticRegression::fit(&x, 2, &y, 1.0);
        let norm = |m: &LogisticRegression| m.weights.iter().map(|w| w * w).sum::<f64>();
        assert!(norm(&tight) < norm(&loose));
    }

    #[test]
    fn handles_constant_feature() {
        // second feature constant — std clamps, no NaN
        let x = vec![1.0, 5.0, -1.0, 5.0, 1.5, 5.0, -1.5, 5.0];
        let y = vec![true, false, true, false];
        let model = LogisticRegression::fit(&x, 2, &y, 1e-3);
        assert!(model.decision(&[1.0, 5.0]).is_finite());
        assert!(model.predict(&[1.0, 5.0]));
    }

    #[test]
    #[should_panic(expected = "features shape")]
    fn shape_mismatch_panics() {
        LogisticRegression::fit(&[1.0, 2.0, 3.0], 2, &[true, false], 0.1);
    }
}
