//! Evaluation metrics: Macro/Micro F1, ROC-AUC, and normalized mutual
//! information.

/// Per-class confusion counts for multi-class predictions.
fn confusion(y_true: &[u32], y_pred: &[u32], num_classes: usize) -> Vec<(usize, usize, usize)> {
    // (tp, fp, fn) per class
    let mut counts = vec![(0usize, 0usize, 0usize); num_classes];
    for (&t, &p) in y_true.iter().zip(y_pred) {
        if t == p {
            counts[t as usize].0 += 1;
        } else {
            counts[p as usize].1 += 1;
            counts[t as usize].2 += 1;
        }
    }
    counts
}

/// Macro-averaged F1: the unweighted mean of per-class F1 scores. Classes
/// absent from both truth and prediction contribute 0, matching
/// scikit-learn's default.
pub fn macro_f1(y_true: &[u32], y_pred: &[u32], num_classes: usize) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    assert!(num_classes > 0);
    let counts = confusion(y_true, y_pred, num_classes);
    let mut sum = 0.0f64;
    for &(tp, fp, fnn) in &counts {
        let denom = 2 * tp + fp + fnn;
        if denom > 0 {
            sum += 2.0 * tp as f64 / denom as f64;
        }
    }
    sum / num_classes as f64
}

/// Micro-averaged F1: F1 over pooled counts. For single-label multi-class
/// problems this equals plain accuracy.
pub fn micro_f1(y_true: &[u32], y_pred: &[u32], num_classes: usize) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    let counts = confusion(y_true, y_pred, num_classes);
    let (tp, fp, fnn) =
        counts.iter().fold((0usize, 0usize, 0usize), |a, &(t, f, n)| (a.0 + t, a.1 + f, a.2 + n));
    let denom = 2 * tp + fp + fnn;
    if denom == 0 {
        return 0.0;
    }
    2.0 * tp as f64 / denom as f64
}

/// Area under the ROC curve via the rank statistic
/// `AUC = (Σ ranks of positives − n₊(n₊+1)/2) / (n₊ n₋)`, with midrank tie
/// handling.
///
/// # Panics
/// Panics unless both classes are present.
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    assert!(n_pos > 0 && n_neg > 0, "AUC requires both classes");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap_or(std::cmp::Ordering::Equal));
    // midranks
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0usize;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let mid = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = mid;
        }
        i = j + 1;
    }
    let sum_pos: f64 = ranks.iter().zip(labels).filter(|&(_, &l)| l).map(|(&r, _)| r).sum();
    (sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

/// Average precision: mean of precision-at-rank over the positive items,
/// ranking by score descending — the area under the precision–recall curve
/// in its step-function form. Ties are broken by input order (stable sort),
/// so exact tie handling is deterministic.
///
/// # Panics
/// Panics if there is no positive item.
pub fn average_precision(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&l| l).count();
    assert!(n_pos > 0, "average precision requires at least one positive");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    let mut hits = 0usize;
    let mut sum = 0.0f64;
    for (rank, &i) in order.iter().enumerate() {
        if labels[i] {
            hits += 1;
            sum += hits as f64 / (rank + 1) as f64;
        }
    }
    sum / n_pos as f64
}

/// Normalized mutual information between two labelings, with arithmetic-mean
/// normalization `NMI = 2·I(U;V) / (H(U) + H(V))`. Returns 1 for identical
/// partitions (up to relabeling) and 0 for independent ones; defined as 0
/// when either partition has zero entropy but they are not both constant.
pub fn nmi(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len());
    assert!(!a.is_empty());
    let n = a.len() as f64;
    let ka = *a.iter().max().unwrap() as usize + 1;
    let kb = *b.iter().max().unwrap() as usize + 1;
    let mut joint = vec![0.0f64; ka * kb];
    let mut pa = vec![0.0f64; ka];
    let mut pb = vec![0.0f64; kb];
    for (&x, &y) in a.iter().zip(b) {
        joint[x as usize * kb + y as usize] += 1.0;
        pa[x as usize] += 1.0;
        pb[y as usize] += 1.0;
    }
    let h = |p: &[f64]| -> f64 {
        p.iter()
            .filter(|&&c| c > 0.0)
            .map(|&c| {
                let q = c / n;
                -q * q.ln()
            })
            .sum()
    };
    let ha = h(&pa);
    let hb = h(&pb);
    let mut mi = 0.0f64;
    for x in 0..ka {
        for y in 0..kb {
            let c = joint[x * kb + y];
            if c > 0.0 {
                let pxy = c / n;
                mi += pxy * (pxy / (pa[x] / n * pb[y] / n)).ln();
            }
        }
    }
    if ha + hb == 0.0 {
        // both partitions constant → identical
        return 1.0;
    }
    (2.0 * mi / (ha + hb)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = vec![0u32, 1, 2, 1, 0];
        assert!((macro_f1(&y, &y, 3) - 1.0).abs() < 1e-12);
        assert!((micro_f1(&y, &y, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn micro_f1_equals_accuracy() {
        let t = vec![0u32, 0, 1, 1, 2, 2];
        let p = vec![0u32, 1, 1, 1, 2, 0];
        // accuracy = 4/6
        assert!((micro_f1(&t, &p, 3) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_hand_computed() {
        // class 0: tp=2 fp=1 fn=0 → f1 = 4/5
        // class 1: tp=0 fp=0 fn=1 → f1 = 0
        let t = vec![0u32, 0, 1];
        let p = vec![0u32, 0, 0];
        let want = (2.0 * 2.0 / (2.0 * 2.0 + 1.0) + 0.0) / 2.0;
        assert!((macro_f1(&t, &p, 2) - want).abs() < 1e-12);
    }

    #[test]
    fn auc_perfect_and_random() {
        let scores = vec![0.9, 0.8, 0.2, 0.1];
        let labels = vec![true, true, false, false];
        assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-12);
        let inverted = vec![false, false, true, true];
        assert!((roc_auc(&scores, &inverted) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn auc_with_ties_is_half() {
        let scores = vec![0.5, 0.5, 0.5, 0.5];
        let labels = vec![true, false, true, false];
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_invariant_to_monotone_transform() {
        let scores = vec![0.1, 0.4, 0.35, 0.8, 0.65];
        let labels = vec![false, false, true, true, false];
        let a1 = roc_auc(&scores, &labels);
        let transformed: Vec<f64> = scores.iter().map(|&s| (5.0 * s).exp()).collect();
        let a2 = roc_auc(&transformed, &labels);
        assert!((a1 - a2).abs() < 1e-12);
    }

    #[test]
    fn nmi_identical_and_permuted() {
        let a = vec![0u32, 0, 1, 1, 2, 2];
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-12);
        let permuted = vec![2u32, 2, 0, 0, 1, 1];
        assert!((nmi(&a, &permuted) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_independent_is_low() {
        // b splits each a-class evenly → I(U;V) = 0
        let a = vec![0u32, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0u32, 1, 0, 1, 0, 1, 0, 1];
        assert!(nmi(&a, &b) < 1e-9);
    }

    #[test]
    fn nmi_constant_partitions() {
        let a = vec![0u32; 5];
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn auc_rejects_single_class() {
        roc_auc(&[0.1, 0.2], &[true, true]);
    }
}

/// Adjusted Rand index between two labelings: chance-corrected pair-counting
/// agreement in `[−0.5, 1]` (1 = identical partitions, ≈0 = independent).
/// A standard companion to [`nmi`] for clustering evaluation.
pub fn adjusted_rand_index(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len());
    assert!(!a.is_empty());
    let ka = *a.iter().max().unwrap() as usize + 1;
    let kb = *b.iter().max().unwrap() as usize + 1;
    let mut joint = vec![0u64; ka * kb];
    let mut ca = vec![0u64; ka];
    let mut cb = vec![0u64; kb];
    for (&x, &y) in a.iter().zip(b) {
        joint[x as usize * kb + y as usize] += 1;
        ca[x as usize] += 1;
        cb[y as usize] += 1;
    }
    let comb2 = |x: u64| -> f64 { (x * x.saturating_sub(1)) as f64 / 2.0 };
    let sum_ij: f64 = joint.iter().map(|&c| comb2(c)).sum();
    let sum_a: f64 = ca.iter().map(|&c| comb2(c)).sum();
    let sum_b: f64 = cb.iter().map(|&c| comb2(c)).sum();
    let total = comb2(a.len() as u64);
    let expected = sum_a * sum_b / total;
    let max_index = (sum_a + sum_b) / 2.0;
    if (max_index - expected).abs() < 1e-12 {
        return 1.0; // both partitions trivial/identical structure
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod ari_tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = vec![0u32, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        let permuted = vec![1u32, 1, 2, 2, 0, 0];
        assert!((adjusted_rand_index(&a, &permuted) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_near_zero() {
        let a = vec![0u32, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0u32, 1, 0, 1, 0, 1, 0, 1];
        assert!(adjusted_rand_index(&a, &b).abs() < 0.2);
    }

    #[test]
    fn partial_agreement_between_zero_and_one() {
        let a = vec![0u32, 0, 0, 1, 1, 1];
        let b = vec![0u32, 0, 1, 1, 1, 1];
        let s = adjusted_rand_index(&a, &b);
        assert!(s > 0.0 && s < 1.0, "ari {s}");
    }
}
