//! Embedding persistence: CSV (interoperable with pandas/numpy) and a JSON
//! envelope carrying the shape. Downstream tasks often run in a different
//! process from training; these helpers make the `(n × d')` matrix portable.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Writes a row-major embedding as CSV: one node per line, `dim` columns,
/// no header.
pub fn save_embedding_csv(path: &Path, embedding: &[f32], dim: usize) -> io::Result<()> {
    assert!(dim > 0 && embedding.len().is_multiple_of(dim), "embedding shape");
    let mut f = BufWriter::new(File::create(path)?);
    for row in embedding.chunks_exact(dim) {
        let mut first = true;
        for v in row {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
            first = false;
        }
        writeln!(f)?;
    }
    Ok(())
}

/// Reads a CSV written by [`save_embedding_csv`]. Returns `(values, dim)`.
pub fn load_embedding_csv(path: &Path) -> io::Result<(Vec<f32>, usize)> {
    let f = BufReader::new(File::open(path)?);
    let mut values = Vec::new();
    let mut dim = 0usize;
    for (lineno, line) in f.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let row: Result<Vec<f32>, _> = line.split(',').map(|t| t.trim().parse()).collect();
        let row = row.map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", lineno + 1))
        })?;
        if dim == 0 {
            dim = row.len();
        } else if row.len() != dim {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: expected {dim} columns, got {}", lineno + 1, row.len()),
            ));
        }
        values.extend(row);
    }
    if dim == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty embedding file"));
    }
    Ok((values, dim))
}

/// Writes the embedding with shape metadata as JSON:
/// `{"rows": n, "dim": d, "data": [...]}`.
pub fn save_embedding_json(path: &Path, embedding: &[f32], dim: usize) -> io::Result<()> {
    assert!(dim > 0 && embedding.len().is_multiple_of(dim), "embedding shape");
    #[derive(serde::Serialize)]
    struct Envelope<'a> {
        rows: usize,
        dim: usize,
        data: &'a [f32],
    }
    let env = Envelope { rows: embedding.len() / dim, dim, data: embedding };
    let f = BufWriter::new(File::create(path)?);
    serde_json::to_writer(f, &env).map_err(io::Error::other)
}

/// Reads a JSON envelope written by [`save_embedding_json`].
pub fn load_embedding_json(path: &Path) -> io::Result<(Vec<f32>, usize)> {
    #[derive(serde::Deserialize)]
    struct Envelope {
        rows: usize,
        dim: usize,
        data: Vec<f32>,
    }
    let f = BufReader::new(File::open(path)?);
    let env: Envelope = serde_json::from_reader(f).map_err(io::Error::other)?;
    if env.data.len() != env.rows * env.dim {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "shape metadata mismatch"));
    }
    Ok((env.data, env.dim))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("coane_eval_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn csv_roundtrip() {
        let emb = vec![1.0f32, -2.5, 0.0, 3.25, 1e-4, 7.0];
        let path = tmp("e.csv");
        save_embedding_csv(&path, &emb, 3).unwrap();
        let (loaded, dim) = load_embedding_csv(&path).unwrap();
        assert_eq!(dim, 3);
        assert_eq!(loaded, emb);
    }

    #[test]
    fn json_roundtrip() {
        let emb = vec![0.5f32; 8];
        let path = tmp("e.json");
        save_embedding_json(&path, &emb, 4).unwrap();
        let (loaded, dim) = load_embedding_json(&path).unwrap();
        assert_eq!(dim, 4);
        assert_eq!(loaded, emb);
    }

    #[test]
    fn csv_ragged_rejected() {
        let path = tmp("ragged.csv");
        std::fs::write(&path, "1,2,3\n4,5\n").unwrap();
        assert!(load_embedding_csv(&path).is_err());
    }

    #[test]
    fn csv_empty_rejected() {
        let path = tmp("empty.csv");
        std::fs::write(&path, "\n\n").unwrap();
        assert!(load_embedding_csv(&path).is_err());
    }

    #[test]
    #[should_panic(expected = "embedding shape")]
    fn save_rejects_bad_shape() {
        save_embedding_csv(&tmp("bad.csv"), &[1.0, 2.0, 3.0], 2).unwrap();
    }
}
