//! # coane-eval
//!
//! The evaluation toolkit behind §4 of the CoANE paper:
//!
//! - [`logreg`] — L2-regularized binary logistic regression (the paper's
//!   downstream classifier for both tasks),
//! - [`classify`] — one-vs-rest node-label classification with Macro/Micro-F1
//!   (Tables 2–3),
//! - [`linkpred`] — link prediction from Hadamard-product edge features with
//!   ROC-AUC (Table 4 left),
//! - [`cluster`] — k-means(++) node clustering scored by normalized mutual
//!   information (Table 4 right, Table 5),
//! - [`metrics`] — F1 / AUC / NMI implementations,
//! - [`tsne`] — exact-gradient t-SNE for the Fig. 3 embedding visualization.

pub mod classify;
pub mod cluster;
pub mod io;
pub mod linkpred;
pub mod logreg;
pub mod metrics;
pub mod tsne;

pub use classify::{classify_nodes, ClassificationScores};
pub use cluster::{kmeans, nmi_clustering};
pub use io::{load_embedding_csv, save_embedding_csv};
pub use linkpred::precision_at_k;
pub use linkpred::{edge_scores, hadamard_features, link_prediction_auc, similarity_link_auc};
pub use logreg::LogisticRegression;
pub use metrics::{adjusted_rand_index, average_precision, macro_f1, micro_f1, nmi, roc_auc};
pub use tsne::{tsne, TsneConfig};
