//! Node-label classification (Tables 2–3): one-vs-rest L2 logistic
//! regression on the learned embeddings, scored by Macro- and Micro-F1.

use coane_graph::NodeId;

use crate::logreg::LogisticRegression;
use crate::metrics::{macro_f1, micro_f1};

/// Macro/Micro-F1 pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassificationScores {
    /// Macro-averaged F1 over classes.
    pub macro_f1: f64,
    /// Micro-averaged F1 (= accuracy for single-label problems).
    pub micro_f1: f64,
}

/// Trains one-vs-rest logistic regression on the `train` nodes' embedding
/// rows and scores predictions on `test`.
///
/// `embedding` is row-major `(n × dim)`; `labels[v]` is node `v`'s class.
pub fn classify_nodes(
    embedding: &[f32],
    dim: usize,
    labels: &[u32],
    train: &[NodeId],
    test: &[NodeId],
    l2: f64,
) -> ClassificationScores {
    assert!(!train.is_empty() && !test.is_empty(), "empty split");
    assert_eq!(embedding.len(), labels.len() * dim, "embedding shape");
    let num_classes = labels.iter().copied().max().unwrap() as usize + 1;
    let row_f64 = |v: NodeId| -> Vec<f64> {
        embedding[v as usize * dim..(v as usize + 1) * dim].iter().map(|&x| x as f64).collect()
    };
    // Train one binary model per class (one-vs-rest).
    let train_features: Vec<f64> = train.iter().flat_map(|&v| row_f64(v)).collect();
    let models: Vec<Option<LogisticRegression>> = (0..num_classes)
        .map(|c| {
            let y: Vec<bool> = train.iter().map(|&v| labels[v as usize] == c as u32).collect();
            // A class absent from the training set cannot be fit.
            if y.iter().all(|&b| !b) {
                None
            } else {
                Some(LogisticRegression::fit(&train_features, dim, &y, l2))
            }
        })
        .collect();
    // Predict by maximal decision value.
    let mut y_true = Vec::with_capacity(test.len());
    let mut y_pred = Vec::with_capacity(test.len());
    for &v in test {
        let row = row_f64(v);
        let mut best = (f64::NEG_INFINITY, 0u32);
        for (c, model) in models.iter().enumerate() {
            if let Some(m) = model {
                let s = m.decision(&row);
                if s > best.0 {
                    best = (s, c as u32);
                }
            }
        }
        y_true.push(labels[v as usize]);
        y_pred.push(best.1);
    }
    ClassificationScores {
        macro_f1: macro_f1(&y_true, &y_pred, num_classes),
        micro_f1: micro_f1(&y_true, &y_pred, num_classes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Embeddings where class c clusters around the c-th basis vector.
    fn clustered_embedding(
        n: usize,
        classes: usize,
        dim: usize,
        noise: f32,
        seed: u64,
    ) -> (Vec<f32>, Vec<u32>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut emb = vec![0.0f32; n * dim];
        let mut labels = vec![0u32; n];
        for v in 0..n {
            let c = v % classes;
            labels[v] = c as u32;
            for j in 0..dim {
                emb[v * dim + j] = if j == c { 1.0 } else { 0.0 } + rng.gen_range(-noise..noise);
            }
        }
        (emb, labels)
    }

    #[test]
    fn near_perfect_on_separable_embeddings() {
        let (emb, labels) = clustered_embedding(120, 3, 8, 0.1, 0);
        let train: Vec<NodeId> = (0..60).collect();
        let test: Vec<NodeId> = (60..120).collect();
        let scores = classify_nodes(&emb, 8, &labels, &train, &test, 1e-3);
        assert!(scores.macro_f1 > 0.95, "macro {}", scores.macro_f1);
        assert!(scores.micro_f1 > 0.95, "micro {}", scores.micro_f1);
    }

    #[test]
    fn noisy_embeddings_score_lower() {
        let (emb, labels) = clustered_embedding(120, 3, 8, 2.5, 1);
        let train: Vec<NodeId> = (0..60).collect();
        let test: Vec<NodeId> = (60..120).collect();
        let noisy = classify_nodes(&emb, 8, &labels, &train, &test, 1e-3);
        let (emb2, labels2) = clustered_embedding(120, 3, 8, 0.05, 1);
        let clean = classify_nodes(&emb2, 8, &labels2, &train, &test, 1e-3);
        assert!(clean.macro_f1 > noisy.macro_f1);
    }

    #[test]
    fn class_missing_from_train_is_never_predicted() {
        let (emb, mut labels) = clustered_embedding(90, 3, 6, 0.1, 2);
        // All class-2 nodes moved to the test set.
        let train: Vec<NodeId> = (0..90).filter(|&v| labels[v as usize] != 2).take(40).collect();
        let test: Vec<NodeId> = (0..90).filter(|v| !train.contains(v)).collect();
        labels[0] = 0; // keep shapes
        let scores = classify_nodes(&emb, 6, &labels, &train, &test, 1e-3);
        assert!(scores.micro_f1 > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty split")]
    fn empty_test_rejected() {
        classify_nodes(&[0.0; 8], 4, &[0, 1], &[0], &[], 1e-3);
    }
}
