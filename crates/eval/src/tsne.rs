//! Exact-gradient t-SNE (van der Maaten & Hinton, 2008) for the Fig. 3
//! embedding visualizations. O(n²) per iteration — adequate at the paper's
//! visualization scale (Cora, n ≈ 2.7k).

use rand::Rng;

/// t-SNE hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions.
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iters: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of iters.
    pub exaggeration: f64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self { perplexity: 30.0, iters: 400, learning_rate: 100.0, exaggeration: 8.0 }
    }
}

/// Embeds row-major `(n × dim)` points into 2-D. Returns a flat `(n × 2)`
/// buffer.
pub fn tsne<R: Rng>(points: &[f32], dim: usize, cfg: &TsneConfig, rng: &mut R) -> Vec<f32> {
    assert!(dim > 0);
    let n = points.len() / dim;
    assert_eq!(points.len(), n * dim, "points shape");
    assert!(n >= 4, "need at least 4 points");
    let perplexity = cfg.perplexity.min((n as f64 - 1.0) / 3.0).max(2.0);

    // Pairwise squared distances in high-dim space.
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let mut s = 0.0f64;
            for k in 0..dim {
                let diff = (points[i * dim + k] - points[j * dim + k]) as f64;
                s += diff * diff;
            }
            d2[i * n + j] = s;
            d2[j * n + i] = s;
        }
    }

    // Per-point precision by binary search on perplexity.
    let target_h = perplexity.ln();
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        let (mut lo, mut hi) = (1e-20f64, 1e20f64);
        let mut beta = 1.0f64;
        for _ in 0..64 {
            let mut sum = 0.0f64;
            let mut h = 0.0f64;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let e = (-beta * d2[i * n + j]).exp();
                sum += e;
            }
            if sum <= 0.0 {
                beta /= 2.0;
                continue;
            }
            for j in 0..n {
                if j == i {
                    continue;
                }
                let pj = (-beta * d2[i * n + j]).exp() / sum;
                if pj > 1e-12 {
                    h -= pj * pj.ln();
                }
            }
            if (h - target_h).abs() < 1e-5 {
                break;
            }
            if h > target_h {
                lo = beta;
                beta = if hi >= 1e20 { beta * 2.0 } else { (beta + hi) / 2.0 };
            } else {
                hi = beta;
                beta = (beta + lo) / 2.0;
            }
        }
        let mut sum = 0.0f64;
        for j in 0..n {
            if j != i {
                p[i * n + j] = (-beta * d2[i * n + j]).exp();
                sum += p[i * n + j];
            }
        }
        if sum > 0.0 {
            for j in 0..n {
                p[i * n + j] /= sum;
            }
        }
    }
    // Symmetrize.
    for i in 0..n {
        for j in (i + 1)..n {
            let v = (p[i * n + j] + p[j * n + i]) / (2.0 * n as f64);
            p[i * n + j] = v.max(1e-12);
            p[j * n + i] = p[i * n + j];
        }
        p[i * n + i] = 0.0;
    }

    // Init small Gaussian.
    let mut y: Vec<f64> = (0..n * 2).map(|_| rng.gen_range(-1e-2..1e-2)).collect();
    let mut vel = vec![0.0f64; n * 2];
    let mut grad = vec![0.0f64; n * 2];
    let mut q = vec![0.0f64; n * n];
    let exag_end = cfg.iters / 4;
    for iter in 0..cfg.iters {
        let exaggeration = if iter < exag_end { cfg.exaggeration } else { 1.0 };
        // Student-t affinities.
        let mut qsum = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = y[i * 2] - y[j * 2];
                let dy = y[i * 2 + 1] - y[j * 2 + 1];
                let w = 1.0 / (1.0 + dx * dx + dy * dy);
                q[i * n + j] = w;
                q[j * n + i] = w;
                qsum += 2.0 * w;
            }
        }
        grad.iter_mut().for_each(|g| *g = 0.0);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = q[i * n + j];
                let pq = exaggeration * p[i * n + j] - w / qsum;
                let mult = 4.0 * pq * w;
                grad[i * 2] += mult * (y[i * 2] - y[j * 2]);
                grad[i * 2 + 1] += mult * (y[i * 2 + 1] - y[j * 2 + 1]);
            }
        }
        let momentum = if iter < exag_end { 0.5 } else { 0.8 };
        for k in 0..n * 2 {
            vel[k] = momentum * vel[k] - cfg.learning_rate * grad[k];
            y[k] += vel[k];
        }
        // Center.
        let (mx, my) = (0..n).fold((0.0, 0.0), |a, i| (a.0 + y[i * 2], a.1 + y[i * 2 + 1]));
        for i in 0..n {
            y[i * 2] -= mx / n as f64;
            y[i * 2 + 1] -= my / n as f64;
        }
    }
    y.into_iter().map(|v| v as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn separates_two_gaussian_blobs() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let n_per = 30usize;
        let dim = 10usize;
        let mut pts = Vec::new();
        for c in 0..2 {
            for _ in 0..n_per {
                for k in 0..dim {
                    let center = if k == c { 8.0 } else { 0.0 };
                    pts.push(center + rng.gen_range(-0.5..0.5f32));
                }
            }
        }
        let cfg = TsneConfig { iters: 250, perplexity: 10.0, ..Default::default() };
        let y = tsne(&pts, dim, &cfg, &mut rng);
        // Mean intra-blob 2-D distance should be far below inter-blob.
        let d = |a: usize, b: usize| -> f64 {
            let dx = (y[a * 2] - y[b * 2]) as f64;
            let dy = (y[a * 2 + 1] - y[b * 2 + 1]) as f64;
            (dx * dx + dy * dy).sqrt()
        };
        let mut intra = (0.0, 0usize);
        let mut inter = (0.0, 0usize);
        for a in 0..2 * n_per {
            for b in (a + 1)..2 * n_per {
                if (a < n_per) == (b < n_per) {
                    intra = (intra.0 + d(a, b), intra.1 + 1);
                } else {
                    inter = (inter.0 + d(a, b), inter.1 + 1);
                }
            }
        }
        let (mi, me) = (intra.0 / intra.1 as f64, inter.0 / inter.1 as f64);
        assert!(me > 2.0 * mi, "inter {me} vs intra {mi}");
    }

    #[test]
    fn output_is_finite_and_centered() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let pts: Vec<f32> = (0..40 * 5).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let cfg = TsneConfig { iters: 60, ..Default::default() };
        let y = tsne(&pts, 5, &cfg, &mut rng);
        assert_eq!(y.len(), 80);
        assert!(y.iter().all(|v| v.is_finite()));
        let mx: f32 = (0..40).map(|i| y[i * 2]).sum::<f32>() / 40.0;
        assert!(mx.abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn too_few_points_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        tsne(&[0.0; 6], 2, &TsneConfig::default(), &mut rng);
    }
}
