//! Link prediction (Table 4 left): Hadamard-product edge features fed to a
//! logistic-regression classifier, scored by ROC-AUC — the node2vec protocol
//! the paper follows.

use coane_graph::NodeId;

use crate::logreg::LogisticRegression;
use crate::metrics::roc_auc;

/// The Hadamard edge feature `z_u ⊙ z_v` of node pair `(u, v)`.
pub fn hadamard_features(embedding: &[f32], dim: usize, u: NodeId, v: NodeId) -> Vec<f64> {
    let a = &embedding[u as usize * dim..(u as usize + 1) * dim];
    let b = &embedding[v as usize * dim..(v as usize + 1) * dim];
    a.iter().zip(b).map(|(&x, &y)| (x as f64) * (y as f64)).collect()
}

fn pair_matrix(
    embedding: &[f32],
    dim: usize,
    pos: &[(NodeId, NodeId)],
    neg: &[(NodeId, NodeId)],
) -> (Vec<f64>, Vec<bool>) {
    let mut feats = Vec::with_capacity((pos.len() + neg.len()) * dim);
    let mut labels = Vec::with_capacity(pos.len() + neg.len());
    for &(u, v) in pos {
        feats.extend(hadamard_features(embedding, dim, u, v));
        labels.push(true);
    }
    for &(u, v) in neg {
        feats.extend(hadamard_features(embedding, dim, u, v));
        labels.push(false);
    }
    (feats, labels)
}

/// Trains the edge classifier on `(train_pos, train_neg)` and returns the
/// ROC-AUC on `(test_pos, test_neg)`.
pub fn link_prediction_auc(
    embedding: &[f32],
    dim: usize,
    train_pos: &[(NodeId, NodeId)],
    train_neg: &[(NodeId, NodeId)],
    test_pos: &[(NodeId, NodeId)],
    test_neg: &[(NodeId, NodeId)],
) -> f64 {
    assert!(!train_pos.is_empty() && !train_neg.is_empty(), "empty training pairs");
    assert!(!test_pos.is_empty() && !test_neg.is_empty(), "empty test pairs");
    let (train_x, train_y) = pair_matrix(embedding, dim, train_pos, train_neg);
    let model = LogisticRegression::fit(&train_x, dim, &train_y, 1e-4);
    let mut scores = Vec::with_capacity(test_pos.len() + test_neg.len());
    let mut labels = Vec::with_capacity(scores.capacity());
    for (label, set) in [(true, test_pos), (false, test_neg)] {
        for &(u, v) in set {
            scores.push(model.decision(&hadamard_features(embedding, dim, u, v)));
            labels.push(label);
        }
    }
    roc_auc(&scores, &labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn hadamard_is_elementwise_product() {
        let emb = vec![1.0f32, 2.0, 3.0, 4.0];
        let f = hadamard_features(&emb, 2, 0, 1);
        assert_eq!(f, vec![3.0, 8.0]);
    }

    /// Two communities: intra-community pairs are "edges". Embeddings equal
    /// community indicators with noise, so Hadamard features separate.
    #[test]
    fn auc_high_when_embeddings_encode_communities() {
        let n = 60usize;
        let dim = 4usize;
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut emb = vec![0.0f32; n * dim];
        for v in 0..n {
            let c = v % 2;
            for j in 0..dim {
                emb[v * dim + j] = if j % 2 == c { 1.0 } else { -1.0 } + rng.gen_range(-0.2..0.2);
            }
        }
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if (u % 2) == (v % 2) {
                    pos.push((u, v));
                } else {
                    neg.push((u, v));
                }
            }
        }
        let (tp, rp) = pos.split_at(pos.len() / 2);
        let (tn, rn) = neg.split_at(neg.len() / 2);
        let auc = link_prediction_auc(&emb, dim, tp, tn, rp, rn);
        assert!(auc > 0.95, "auc {auc}");
    }

    #[test]
    fn auc_near_half_for_random_embeddings() {
        let n = 80usize;
        let dim = 8usize;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let emb: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let pairs: Vec<(u32, u32)> = (0..200)
            .map(|_| {
                let u = rng.gen_range(0..n as u32);
                let mut v = rng.gen_range(0..n as u32);
                while v == u {
                    v = rng.gen_range(0..n as u32);
                }
                (u, v)
            })
            .collect();
        let (pos, neg) = pairs.split_at(100);
        let (tp, rp) = pos.split_at(50);
        let (tn, rn) = neg.split_at(50);
        let auc = link_prediction_auc(&emb, dim, tp, tn, rp, rn);
        assert!((auc - 0.5).abs() < 0.2, "auc {auc}");
    }

    #[test]
    #[should_panic(expected = "empty training pairs")]
    fn rejects_empty_training() {
        link_prediction_auc(&[0.0; 4], 2, &[], &[(0, 1)], &[(0, 1)], &[(0, 1)]);
    }
}

/// Precision@k: the fraction of the `k` highest-scored test pairs that are
/// true edges — a ranking-quality companion to AUC for link prediction.
pub fn precision_at_k(scores: &[f64], labels: &[bool], k: usize) -> f64 {
    assert_eq!(scores.len(), labels.len());
    assert!(k > 0 && k <= scores.len(), "k out of range");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    let hits = order[..k].iter().filter(|&&i| labels[i]).count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod precision_tests {
    use super::*;

    #[test]
    fn perfect_ranking() {
        let scores = vec![0.9, 0.8, 0.2, 0.1];
        let labels = vec![true, true, false, false];
        assert_eq!(precision_at_k(&scores, &labels, 2), 1.0);
        assert_eq!(precision_at_k(&scores, &labels, 4), 0.5);
    }

    #[test]
    fn inverted_ranking() {
        let scores = vec![0.1, 0.2, 0.8, 0.9];
        let labels = vec![true, true, false, false];
        assert_eq!(precision_at_k(&scores, &labels, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "k out of range")]
    fn k_zero_rejected() {
        precision_at_k(&[0.5], &[true], 0);
    }
}
