//! Link prediction (Table 4 left): Hadamard-product edge features fed to a
//! logistic-regression classifier, scored by ROC-AUC — the node2vec protocol
//! the paper follows.

use coane_graph::NodeId;
use coane_nn::Scorer;

use crate::logreg::LogisticRegression;
use crate::metrics::roc_auc;

/// The Hadamard edge feature `z_u ⊙ z_v` of node pair `(u, v)`.
pub fn hadamard_features(embedding: &[f32], dim: usize, u: NodeId, v: NodeId) -> Vec<f64> {
    let a = &embedding[u as usize * dim..(u as usize + 1) * dim];
    let b = &embedding[v as usize * dim..(v as usize + 1) * dim];
    a.iter().zip(b).map(|(&x, &y)| (x as f64) * (y as f64)).collect()
}

fn pair_matrix(
    embedding: &[f32],
    dim: usize,
    pos: &[(NodeId, NodeId)],
    neg: &[(NodeId, NodeId)],
) -> (Vec<f64>, Vec<bool>) {
    let mut feats = Vec::with_capacity((pos.len() + neg.len()) * dim);
    let mut labels = Vec::with_capacity(pos.len() + neg.len());
    for &(u, v) in pos {
        feats.extend(hadamard_features(embedding, dim, u, v));
        labels.push(true);
    }
    for &(u, v) in neg {
        feats.extend(hadamard_features(embedding, dim, u, v));
        labels.push(false);
    }
    (feats, labels)
}

/// Trains the edge classifier on `(train_pos, train_neg)` and returns the
/// ROC-AUC on `(test_pos, test_neg)`.
pub fn link_prediction_auc(
    embedding: &[f32],
    dim: usize,
    train_pos: &[(NodeId, NodeId)],
    train_neg: &[(NodeId, NodeId)],
    test_pos: &[(NodeId, NodeId)],
    test_neg: &[(NodeId, NodeId)],
) -> f64 {
    assert!(!train_pos.is_empty() && !train_neg.is_empty(), "empty training pairs");
    assert!(!test_pos.is_empty() && !test_neg.is_empty(), "empty test pairs");
    let (train_x, train_y) = pair_matrix(embedding, dim, train_pos, train_neg);
    let model = LogisticRegression::fit(&train_x, dim, &train_y, 1e-4);
    let mut scores = Vec::with_capacity(test_pos.len() + test_neg.len());
    let mut labels = Vec::with_capacity(scores.capacity());
    for (label, set) in [(true, test_pos), (false, test_neg)] {
        for &(u, v) in set {
            scores.push(model.decision(&hadamard_features(embedding, dim, u, v)));
            labels.push(label);
        }
    }
    roc_auc(&scores, &labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn hadamard_is_elementwise_product() {
        let emb = vec![1.0f32, 2.0, 3.0, 4.0];
        let f = hadamard_features(&emb, 2, 0, 1);
        assert_eq!(f, vec![3.0, 8.0]);
    }

    /// Two communities: intra-community pairs are "edges". Embeddings equal
    /// community indicators with noise, so Hadamard features separate.
    #[test]
    fn auc_high_when_embeddings_encode_communities() {
        let n = 60usize;
        let dim = 4usize;
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut emb = vec![0.0f32; n * dim];
        for v in 0..n {
            let c = v % 2;
            for j in 0..dim {
                emb[v * dim + j] = if j % 2 == c { 1.0 } else { -1.0 } + rng.gen_range(-0.2..0.2);
            }
        }
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if (u % 2) == (v % 2) {
                    pos.push((u, v));
                } else {
                    neg.push((u, v));
                }
            }
        }
        let (tp, rp) = pos.split_at(pos.len() / 2);
        let (tn, rn) = neg.split_at(neg.len() / 2);
        let auc = link_prediction_auc(&emb, dim, tp, tn, rp, rn);
        assert!(auc > 0.95, "auc {auc}");
    }

    #[test]
    fn auc_near_half_for_random_embeddings() {
        let n = 80usize;
        let dim = 8usize;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let emb: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let pairs: Vec<(u32, u32)> = (0..200)
            .map(|_| {
                let u = rng.gen_range(0..n as u32);
                let mut v = rng.gen_range(0..n as u32);
                while v == u {
                    v = rng.gen_range(0..n as u32);
                }
                (u, v)
            })
            .collect();
        let (pos, neg) = pairs.split_at(100);
        let (tp, rp) = pos.split_at(50);
        let (tn, rn) = neg.split_at(50);
        let auc = link_prediction_auc(&emb, dim, tp, tn, rp, rn);
        assert!((auc - 0.5).abs() < 0.2, "auc {auc}");
    }

    #[test]
    #[should_panic(expected = "empty training pairs")]
    fn rejects_empty_training() {
        link_prediction_auc(&[0.0; 4], 2, &[], &[(0, 1)], &[(0, 1)], &[(0, 1)]);
    }
}

/// Scores each `(u, v)` pair by the given embedding-similarity scorer —
/// the training-free edge score used by the serving layer's `score_links`
/// endpoint and the unsupervised link-prediction protocol. Shares the one
/// canonical scorer implementation in [`coane_nn::sim`].
pub fn edge_scores(
    embedding: &[f32],
    dim: usize,
    pairs: &[(NodeId, NodeId)],
    scorer: Scorer,
) -> Vec<f64> {
    pairs
        .iter()
        .map(|&(u, v)| {
            let a = &embedding[u as usize * dim..(u as usize + 1) * dim];
            let b = &embedding[v as usize * dim..(v as usize + 1) * dim];
            scorer.score(a, b) as f64
        })
        .collect()
}

/// Training-free link prediction: ROC-AUC of raw embedding-similarity
/// scores on positive vs. negative pairs. A logreg-free companion to
/// [`link_prediction_auc`] for settings (like online serving) where no
/// labeled training split exists.
pub fn similarity_link_auc(
    embedding: &[f32],
    dim: usize,
    pos: &[(NodeId, NodeId)],
    neg: &[(NodeId, NodeId)],
    scorer: Scorer,
) -> f64 {
    assert!(!pos.is_empty() && !neg.is_empty(), "empty test pairs");
    let mut scores = edge_scores(embedding, dim, pos, scorer);
    scores.extend(edge_scores(embedding, dim, neg, scorer));
    let labels: Vec<bool> = pos.iter().map(|_| true).chain(neg.iter().map(|_| false)).collect();
    roc_auc(&scores, &labels)
}

#[cfg(test)]
mod scorer_tests {
    use super::*;

    #[test]
    fn edge_scores_match_direct_scorer_calls() {
        let emb = vec![1.0f32, 0.0, 0.0, 1.0, 1.0, 1.0];
        let pairs = [(0u32, 1u32), (0, 2), (1, 2)];
        for scorer in Scorer::ALL {
            let got = edge_scores(&emb, 2, &pairs, scorer);
            for (k, &(u, v)) in pairs.iter().enumerate() {
                let a = &emb[u as usize * 2..u as usize * 2 + 2];
                let b = &emb[v as usize * 2..v as usize * 2 + 2];
                assert_eq!(got[k], scorer.score(a, b) as f64, "{}", scorer.name());
            }
        }
    }

    #[test]
    fn similarity_auc_separates_aligned_pairs() {
        // Two orthogonal clusters: intra-cluster pairs must outrank
        // cross-cluster pairs under every scorer.
        let n = 8usize;
        let mut emb = vec![0.0f32; n * 2];
        for v in 0..n {
            emb[v * 2 + v % 2] = 1.0 + 0.01 * v as f32;
        }
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if u % 2 == v % 2 {
                    pos.push((u, v));
                } else {
                    neg.push((u, v));
                }
            }
        }
        for scorer in Scorer::ALL {
            let auc = similarity_link_auc(&emb, 2, &pos, &neg, scorer);
            assert!(auc > 0.9, "{}: auc {auc}", scorer.name());
        }
    }

    #[test]
    #[should_panic(expected = "empty test pairs")]
    fn similarity_auc_rejects_empty() {
        similarity_link_auc(&[0.0; 2], 2, &[], &[(0, 0)], Scorer::Dot);
    }
}

/// Precision@k: the fraction of the `k` highest-scored test pairs that are
/// true edges — a ranking-quality companion to AUC for link prediction.
pub fn precision_at_k(scores: &[f64], labels: &[bool], k: usize) -> f64 {
    assert_eq!(scores.len(), labels.len());
    assert!(k > 0 && k <= scores.len(), "k out of range");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    let hits = order[..k].iter().filter(|&&i| labels[i]).count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod precision_tests {
    use super::*;

    #[test]
    fn perfect_ranking() {
        let scores = vec![0.9, 0.8, 0.2, 0.1];
        let labels = vec![true, true, false, false];
        assert_eq!(precision_at_k(&scores, &labels, 2), 1.0);
        assert_eq!(precision_at_k(&scores, &labels, 4), 0.5);
    }

    #[test]
    fn inverted_ranking() {
        let scores = vec![0.1, 0.2, 0.8, 0.9];
        let labels = vec![true, true, false, false];
        assert_eq!(precision_at_k(&scores, &labels, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "k out of range")]
    fn k_zero_rejected() {
        precision_at_k(&[0.5], &[true], 0);
    }
}
