//! Node clustering (Table 4 right, Table 5): k-means with k-means++
//! initialization on the embeddings, K = number of ground-truth labels,
//! scored by NMI against the labels.

use rand::Rng;

use crate::metrics::nmi;

/// K-means clustering of row-major `(n × dim)` points.
///
/// Uses k-means++ seeding and Lloyd iterations until assignment convergence
/// or `max_iters`. Returns the cluster id per point.
///
/// # Panics
/// Panics if `k == 0` or `k > n`.
#[allow(clippy::needless_range_loop)] // indexed form is clearer in this kernel
pub fn kmeans<R: Rng>(
    points: &[f32],
    dim: usize,
    k: usize,
    max_iters: usize,
    rng: &mut R,
) -> Vec<u32> {
    assert!(dim > 0);
    let n = points.len() / dim;
    assert_eq!(points.len(), n * dim, "points shape");
    assert!(k > 0 && k <= n, "k must be in 1..=n");
    let row = |i: usize| &points[i * dim..(i + 1) * dim];
    let dist2 = |a: &[f32], b: &[f32]| -> f64 {
        a.iter().zip(b).map(|(&x, &y)| ((x - y) as f64).powi(2)).sum()
    };

    // k-means++ seeding
    let mut centers: Vec<Vec<f32>> = Vec::with_capacity(k);
    centers.push(row(rng.gen_range(0..n)).to_vec());
    let mut d2 = vec![0.0f64; n];
    while centers.len() < k {
        let mut total = 0.0f64;
        for i in 0..n {
            d2[i] = centers.iter().map(|c| dist2(row(i), c)).fold(f64::INFINITY, f64::min);
            total += d2[i];
        }
        let next = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut x = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if x < d {
                    chosen = i;
                    break;
                }
                x -= d;
            }
            chosen
        };
        centers.push(row(next).to_vec());
    }

    let mut assign = vec![0u32; n];
    for _ in 0..max_iters {
        let mut changed = false;
        for i in 0..n {
            let mut best = (f64::INFINITY, 0u32);
            for (c, center) in centers.iter().enumerate() {
                let d = dist2(row(i), center);
                if d < best.0 {
                    best = (d, c as u32);
                }
            }
            if assign[i] != best.1 {
                assign[i] = best.1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // recompute centers; empty clusters re-seeded from the farthest point
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assign[i] as usize;
            counts[c] += 1;
            for (s, &x) in sums[c].iter_mut().zip(row(i)) {
                *s += x as f64;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                let far = (0..n)
                    .max_by(|&a, &b| {
                        dist2(row(a), &centers[assign[a] as usize])
                            .partial_cmp(&dist2(row(b), &centers[assign[b] as usize]))
                            .unwrap()
                    })
                    .unwrap();
                centers[c] = row(far).to_vec();
            } else {
                for (j, s) in sums[c].iter().enumerate() {
                    centers[c][j] = (s / counts[c] as f64) as f32;
                }
            }
        }
    }
    assign
}

/// Clusters the embedding into `K = max(labels)+1` groups and returns the
/// NMI against `labels` — the paper's node-clustering protocol.
pub fn nmi_clustering<R: Rng>(embedding: &[f32], dim: usize, labels: &[u32], rng: &mut R) -> f64 {
    let k = labels.iter().copied().max().unwrap_or(0) as usize + 1;
    let assign = kmeans(embedding, dim, k, 100, rng);
    nmi(labels, &assign)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn blobs(n_per: usize, centers: &[(f32, f32)], noise: f32, seed: u64) -> (Vec<f32>, Vec<u32>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per {
                pts.push(cx + rng.gen_range(-noise..noise));
                pts.push(cy + rng.gen_range(-noise..noise));
                labels.push(c as u32);
            }
        }
        (pts, labels)
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let (pts, labels) = blobs(40, &[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)], 0.5, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let score = nmi_clustering(&pts, 2, &labels, &mut rng);
        assert!(score > 0.95, "nmi {score}");
    }

    #[test]
    fn overlapping_blobs_score_lower() {
        let (pts, labels) = blobs(40, &[(0.0, 0.0), (1.0, 0.0)], 2.0, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let score = nmi_clustering(&pts, 2, &labels, &mut rng);
        assert!(score < 0.5, "nmi {score}");
    }

    #[test]
    fn kmeans_assignments_cover_range() {
        let (pts, _) = blobs(20, &[(0.0, 0.0), (5.0, 5.0)], 0.3, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let assign = kmeans(&pts, 2, 2, 50, &mut rng);
        assert_eq!(assign.len(), 40);
        assert!(assign.contains(&0));
        assert!(assign.contains(&1));
    }

    #[test]
    fn k_equal_n_each_point_own_cluster() {
        let pts = vec![0.0f32, 0.0, 5.0, 5.0, 10.0, 10.0];
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let assign = kmeans(&pts, 2, 3, 50, &mut rng);
        let mut sorted = assign.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn k_zero_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        kmeans(&[0.0, 0.0], 2, 0, 10, &mut rng);
    }

    #[test]
    fn identical_points_stable() {
        let pts = vec![1.0f32; 20];
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let assign = kmeans(&pts, 2, 2, 10, &mut rng);
        assert_eq!(assign.len(), 10);
    }
}
