//! Aggregation internals: the shared collector plus the thread-local scope
//! path stack.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashSet};
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::{Duration, Instant};

use serde::Value;

thread_local! {
    /// Per-thread stack of open scope names. Process-wide per thread (not
    /// per collector): if two enabled collectors time scopes on the same
    /// thread simultaneously their paths interleave, which is acceptable
    /// for the workspace's one-collector-per-run usage.
    static PATH: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Pushes `name` onto the current thread's scope stack and returns the full
/// `/`-joined path.
pub(crate) fn push_path(name: &'static str) -> String {
    PATH.with(|p| {
        let mut stack = p.borrow_mut();
        stack.push(name);
        stack.join("/")
    })
}

/// Pops the innermost open scope off the current thread's stack.
pub(crate) fn pop_path() {
    PATH.with(|p| {
        p.borrow_mut().pop();
    });
}

/// Aggregated statistics for one scope path.
#[derive(Clone, Copy, Debug)]
pub struct ScopeStat {
    /// Times the scope was entered.
    pub calls: u64,
    /// Total wall-clock time spent inside (sums across threads).
    pub total: Duration,
    /// Number of distinct threads that entered the scope.
    pub threads: usize,
}

/// Aggregated statistics for one gauge.
#[derive(Clone, Copy, Debug)]
pub struct GaugeStat {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples (for [`GaugeStat::mean`]).
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Most recent sample.
    pub last: f64,
}

impl GaugeStat {
    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Aggregated statistics for one histogram, with bucket-estimated quantiles.
#[derive(Clone, Copy, Debug)]
pub struct HistStat {
    /// Number of samples recorded.
    pub count: u64,
    /// Smallest sample (exact).
    pub min: f64,
    /// Largest sample (exact).
    pub max: f64,
    /// Median, estimated from the log buckets.
    pub p50: f64,
    /// 90th percentile, estimated from the log buckets.
    pub p90: f64,
    /// 99th percentile, estimated from the log buckets.
    pub p99: f64,
}

/// Number of histogram buckets: values 0..8 get exact buckets, then each
/// octave splits into [`HIST_SUB`] sub-buckets (HDR-style), which bounds the
/// relative quantile error at ~12.5% while keeping the array tiny.
const HIST_BUCKETS: usize = 512;
/// Sub-buckets per octave above the exact range.
const HIST_SUB: u64 = 8;

/// Fixed-size log-bucketed histogram over non-negative samples.
///
/// Deterministic and bounded: recording is an integer bucket-index
/// computation plus a counter increment, so the collector's
/// observation-only contract extends to histograms (no allocation after
/// construction, no float accumulation that could vary by record order for
/// the quantile *buckets*; `min`/`max` are exact).
pub(crate) struct Hist {
    counts: Box<[u64; HIST_BUCKETS]>,
    total: u64,
    min: f64,
    max: f64,
}

/// Bucket index for a sample (values are clamped at 0 below and the last
/// bucket above). 0..8 map exactly; above that, octave `e` (msb position)
/// splits into [`HIST_SUB`] sub-buckets of width `2^(e-3)`.
fn hist_bucket(value: f64) -> usize {
    let v = if value.is_finite() && value > 0.0 { value as u64 } else { 0 };
    if v < HIST_SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64;
    let sub = (v >> (msb - 3)) & (HIST_SUB - 1);
    let idx = (msb - 3) * HIST_SUB + sub + HIST_SUB;
    (idx as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive lower bound and exclusive upper bound of a bucket (inverse of
/// [`hist_bucket`]); the representative value reported for a quantile is
/// the midpoint.
fn hist_bounds(idx: usize) -> (u64, u64) {
    let i = idx as u64;
    if i < HIST_SUB {
        return (i, i + 1);
    }
    let oct = (i - HIST_SUB) / HIST_SUB + 3;
    let sub = (i - HIST_SUB) % HIST_SUB;
    let step = 1u64 << (oct - 3);
    let low = (1u64 << oct) + sub * step;
    (low, low + step)
}

impl Hist {
    fn new() -> Self {
        Self {
            counts: Box::new([0u64; HIST_BUCKETS]),
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn record(&mut self, value: f64) {
        self.counts[hist_bucket(value)] += 1;
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Value at quantile `q` in [0, 1]: midpoint of the bucket holding the
    /// rank-`ceil(q·total)` sample, clamped to the exact observed range.
    fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let (low, high) = hist_bounds(idx);
                let mid = (low + high) as f64 / 2.0;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    fn stat(&self) -> HistStat {
        HistStat {
            count: self.total,
            min: if self.total == 0 { 0.0 } else { self.min },
            max: if self.total == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

struct ScopeAccum {
    calls: u64,
    total: Duration,
    threads: HashSet<ThreadId>,
}

pub(crate) struct Event {
    pub t: f64,
    pub kind: &'static str,
    pub payload: Value,
}

/// Shared aggregation state behind an enabled [`crate::Obs`] handle.
///
/// Mutex-per-family keeps contention low: scope records, counters, gauges
/// and events lock independently. All locks are held only for the map
/// update itself.
pub(crate) struct Collector {
    start: Instant,
    scopes: Mutex<BTreeMap<String, ScopeAccum>>,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, GaugeStat>>,
    hists: Mutex<BTreeMap<&'static str, Hist>>,
    events: Mutex<Vec<Event>>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector").field("elapsed_secs", &self.elapsed_secs()).finish()
    }
}

impl Collector {
    pub(crate) fn new() -> Self {
        Self {
            start: Instant::now(),
            scopes: Mutex::new(BTreeMap::new()),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
            events: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    pub(crate) fn record_scope(&self, path: String, elapsed: Duration) {
        let tid = std::thread::current().id();
        let mut scopes = self.scopes.lock().unwrap();
        let acc = scopes.entry(path).or_insert_with(|| ScopeAccum {
            calls: 0,
            total: Duration::ZERO,
            threads: HashSet::new(),
        });
        acc.calls += 1;
        acc.total += elapsed;
        acc.threads.insert(tid);
    }

    pub(crate) fn add(&self, counter: &'static str, n: u64) {
        *self.counters.lock().unwrap().entry(counter).or_insert(0) += n;
    }

    pub(crate) fn gauge(&self, name: &'static str, value: f64) {
        let mut gauges = self.gauges.lock().unwrap();
        let g = gauges.entry(name).or_insert(GaugeStat {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            last: 0.0,
        });
        g.count += 1;
        g.sum += value;
        g.min = g.min.min(value);
        g.max = g.max.max(value);
        g.last = value;
    }

    pub(crate) fn histogram(&self, name: &'static str, value: f64) {
        self.hists.lock().unwrap().entry(name).or_insert_with(Hist::new).record(value);
    }

    pub(crate) fn event(&self, kind: &'static str, payload: Value) {
        let t = self.elapsed_secs();
        self.events.lock().unwrap().push(Event { t, kind, payload });
    }

    pub(crate) fn counter(&self, name: &str) -> u64 {
        self.counters.lock().unwrap().get(name).copied().unwrap_or(0)
    }

    pub(crate) fn gauge_stat(&self, name: &str) -> Option<GaugeStat> {
        self.gauges.lock().unwrap().get(name).copied()
    }

    pub(crate) fn scope_stat(&self, path: &str) -> Option<ScopeStat> {
        self.scopes.lock().unwrap().get(path).map(|a| ScopeStat {
            calls: a.calls,
            total: a.total,
            threads: a.threads.len(),
        })
    }

    pub(crate) fn hist_stat(&self, name: &str) -> Option<HistStat> {
        self.hists.lock().unwrap().get(name).map(Hist::stat)
    }

    pub(crate) fn events_of(&self, kind: &str) -> Vec<Value> {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.payload.clone())
            .collect()
    }

    pub(crate) fn num_events(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Snapshot of all scope paths with aggregated stats, in path order.
    pub(crate) fn scope_snapshot(&self) -> Vec<(String, ScopeStat)> {
        self.scopes
            .lock()
            .unwrap()
            .iter()
            .map(|(path, a)| {
                (
                    path.clone(),
                    ScopeStat { calls: a.calls, total: a.total, threads: a.threads.len() },
                )
            })
            .collect()
    }

    /// Snapshot of all counters, in name order.
    pub(crate) fn counter_snapshot(&self) -> Vec<(&'static str, u64)> {
        self.counters.lock().unwrap().iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Snapshot of all gauges, in name order.
    pub(crate) fn gauge_snapshot(&self) -> Vec<(&'static str, GaugeStat)> {
        self.gauges.lock().unwrap().iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Snapshot of all histograms, in name order.
    pub(crate) fn hist_snapshot(&self) -> Vec<(&'static str, HistStat)> {
        self.hists.lock().unwrap().iter().map(|(&k, h)| (k, h.stat())).collect()
    }

    /// Snapshot of all events in insertion order (t, kind, payload).
    pub(crate) fn event_snapshot(&self) -> Vec<(f64, &'static str, Value)> {
        self.events.lock().unwrap().iter().map(|e| (e.t, e.kind, e.payload.clone())).collect()
    }
}
