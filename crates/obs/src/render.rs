//! Output rendering: the JSONL event stream and the human-readable summary.

use std::collections::BTreeMap;

use serde::Value;

use crate::collector::Collector;

fn envelope(t: f64, kind: &str, payload: Value) -> Value {
    let mut map = BTreeMap::new();
    map.insert("t".to_string(), Value::Number(t));
    map.insert("event".to_string(), Value::String(kind.to_string()));
    match payload {
        Value::Object(fields) => {
            for (k, v) in fields {
                // The envelope keys win on collision; payloads should not
                // use "t"/"event" as field names.
                map.entry(k).or_insert(v);
            }
        }
        Value::Null => {}
        other => {
            map.insert("value".to_string(), other);
        }
    }
    Value::Object(map)
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Renders the full JSONL stream: events in insertion order, then aggregate
/// `scope`/`counter`/`gauge` records, then one final `summary` line.
pub(crate) fn jsonl(c: &Collector) -> String {
    let mut out = String::new();
    let mut push = |v: &Value| {
        out.push_str(&serde_json::to_string(v).expect("value trees always serialize"));
        out.push('\n');
    };
    for (t, kind, payload) in c.event_snapshot() {
        push(&envelope(t, kind, payload));
    }
    let now = c.elapsed_secs();
    for (path, s) in c.scope_snapshot() {
        push(&envelope(
            now,
            "scope",
            obj(vec![
                ("path", Value::String(path)),
                ("calls", Value::Number(s.calls as f64)),
                ("secs", Value::Number(s.total.as_secs_f64())),
                ("threads", Value::Number(s.threads as f64)),
            ]),
        ));
    }
    for (name, v) in c.counter_snapshot() {
        push(&envelope(
            now,
            "counter",
            obj(vec![
                ("name", Value::String(name.to_string())),
                ("value", Value::Number(v as f64)),
            ]),
        ));
    }
    for (name, g) in c.gauge_snapshot() {
        push(&envelope(
            now,
            "gauge",
            obj(vec![
                ("name", Value::String(name.to_string())),
                ("count", Value::Number(g.count as f64)),
                ("mean", Value::Number(g.mean())),
                ("min", Value::Number(g.min)),
                ("max", Value::Number(g.max)),
                ("last", Value::Number(g.last)),
            ]),
        ));
    }
    for (name, h) in c.hist_snapshot() {
        push(&envelope(
            now,
            "histogram",
            obj(vec![
                ("name", Value::String(name.to_string())),
                ("count", Value::Number(h.count as f64)),
                ("min", Value::Number(h.min)),
                ("max", Value::Number(h.max)),
                ("p50", Value::Number(h.p50)),
                ("p90", Value::Number(h.p90)),
                ("p99", Value::Number(h.p99)),
            ]),
        ));
    }
    push(&envelope(now, "summary", obj(vec![("wall_secs", Value::Number(now))])));
    out
}

/// Renders the human-readable end-of-run summary.
pub(crate) fn summary(c: &Collector) -> String {
    let mut out = String::new();
    out.push_str(&format!("── observability summary ({:.2} s wall) ──\n", c.elapsed_secs()));
    let scopes = c.scope_snapshot();
    if !scopes.is_empty() {
        out.push_str("scopes (total wall time × calls):\n");
        // BTreeMap path order places children directly under their parent;
        // indent by path depth and print the leaf segment.
        for (path, s) in &scopes {
            let depth = path.matches('/').count();
            let leaf = path.rsplit('/').next().unwrap_or(path);
            let label = format!("{}{}", "  ".repeat(depth + 1), leaf);
            let threads =
                if s.threads > 1 { format!("  [{} threads]", s.threads) } else { String::new() };
            out.push_str(&format!(
                "{label:<28} {:>9.3} s × {}{threads}\n",
                s.total.as_secs_f64(),
                s.calls
            ));
        }
    }
    let counters = c.counter_snapshot();
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &counters {
            out.push_str(&format!("  {name:<26} {v}\n"));
        }
    }
    let gauges = c.gauge_snapshot();
    if !gauges.is_empty() {
        out.push_str("gauges (mean [min..max] × samples):\n");
        for (name, g) in &gauges {
            out.push_str(&format!(
                "  {name:<26} {:.3} [{:.3}..{:.3}] × {}\n",
                g.mean(),
                g.min,
                g.max,
                g.count
            ));
        }
    }
    let hists = c.hist_snapshot();
    if !hists.is_empty() {
        out.push_str("histograms (p50/p90/p99 [min..max] × samples):\n");
        for (name, h) in &hists {
            out.push_str(&format!(
                "  {name:<26} {:.0}/{:.0}/{:.0} [{:.0}..{:.0}] × {}\n",
                h.p50, h.p90, h.p99, h.min, h.max, h.count
            ));
        }
    }
    out
}
