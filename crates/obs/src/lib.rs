//! # coane-obs
//!
//! Observability for the CoANE workspace: hierarchical wall-clock timing
//! scopes, counters and gauges, and a structured JSONL event sink with a
//! human-readable end-of-run summary.
//!
//! The public handle is [`Obs`] — a cheap `Clone`-able wrapper around
//! `Option<Arc<Collector>>`. A *disabled* handle (the default) turns every
//! instrumentation call into a branch on `None` that does no allocation, no
//! locking, and no clock read, so instrumented code paths cost nothing when
//! telemetry is off. An *enabled* handle aggregates into a shared
//! [`collector`](collector::Collector) behind mutexes.
//!
//! ## Contract: observation only
//!
//! Telemetry is strictly read-only with respect to the computation it
//! observes. Instrumentation never draws from an RNG, never reorders float
//! reductions, and never feeds a measured value back into the training
//! state — embeddings are bit-identical with telemetry on or off at any
//! thread count (enforced by `tests/determinism.rs` at the workspace root).
//!
//! ## Scopes
//!
//! [`Obs::scope`] returns an RAII guard; nested guards on the same thread
//! build a `/`-separated path (`fit/prepare/walks`). The nesting stack is
//! thread-local, so concurrently timed scopes on different threads cannot
//! corrupt each other's paths; a scope opened on a freshly spawned worker
//! thread starts a new root path. Each aggregated path records call count,
//! total duration, and the number of distinct threads that entered it.
//!
//! ## Events
//!
//! [`Obs::event`] records a timestamped payload (any `serde::Serialize`
//! type). [`Obs::write_jsonl`] emits one JSON object per line: first every
//! event in insertion order, then aggregate `scope` / `counter` / `gauge`
//! records, then a final `summary` line. Every line carries `"t"` (seconds
//! since the collector was created, monotonic) and `"event"` (the record
//! kind) — see DESIGN.md §2.7 for the full schema.

mod collector;
mod render;

use std::io::{self, Write};
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use collector::Collector;
pub use collector::{GaugeStat, HistStat, ScopeStat};
// Re-exported so downstream crates can build/match event payloads without a
// direct serde dependency.
pub use serde::Value;

/// Handle to a telemetry collector; disabled by default.
///
/// Cloning shares the underlying collector (enabled) or stays a no-op
/// (disabled). All methods on a disabled handle return immediately.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    inner: Option<Arc<Collector>>,
}

impl Obs {
    /// A disabled handle: every instrumentation call is a no-op.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A fresh enabled handle with its own collector; `t = 0` is now.
    pub fn enabled() -> Self {
        Self { inner: Some(Arc::new(Collector::new())) }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Seconds since the collector was created (0.0 when disabled).
    pub fn elapsed_secs(&self) -> f64 {
        match &self.inner {
            Some(c) => c.elapsed_secs(),
            None => 0.0,
        }
    }

    /// Opens a timing scope; the returned guard records on drop. Nested
    /// scopes on one thread extend the `/`-separated path.
    #[must_use = "the scope is timed until the returned guard is dropped"]
    pub fn scope(&self, name: &'static str) -> Scope {
        match &self.inner {
            Some(c) => {
                Scope { rec: Some((Arc::clone(c), collector::push_path(name), Instant::now())) }
            }
            None => Scope { rec: None },
        }
    }

    /// Adds `n` to the named monotonic counter.
    pub fn add(&self, counter: &'static str, n: u64) {
        if let Some(c) = &self.inner {
            c.add(counter, n);
        }
    }

    /// Records one sample of the named gauge (tracked as last/min/max/mean).
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(c) = &self.inner {
            c.gauge(name, value);
        }
    }

    /// Records one sample into the named histogram (log-bucketed; quantiles
    /// are bucket-midpoint estimates, `min`/`max` exact). Intended for
    /// latency samples in microseconds, but any non-negative value works.
    pub fn histogram(&self, name: &'static str, value: f64) {
        if let Some(c) = &self.inner {
            c.histogram(name, value);
        }
    }

    /// Records a timestamped structured event. Object-shaped payloads are
    /// merged into the record; any other shape lands under a `"value"` key.
    pub fn event<T: Serialize + ?Sized>(&self, kind: &'static str, payload: &T) {
        if let Some(c) = &self.inner {
            c.event(kind, payload.to_value());
        }
    }

    // ---------------------------------------------------------- accessors

    /// Current value of a counter (0 when absent or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.as_ref().map_or(0, |c| c.counter(name))
    }

    /// Aggregated statistics for a gauge, if it has samples.
    pub fn gauge_stat(&self, name: &str) -> Option<GaugeStat> {
        self.inner.as_ref().and_then(|c| c.gauge_stat(name))
    }

    /// Aggregated statistics for a histogram, if it has samples.
    pub fn hist_stat(&self, name: &str) -> Option<HistStat> {
        self.inner.as_ref().and_then(|c| c.hist_stat(name))
    }

    /// Aggregated statistics for a scope path, if it was entered.
    pub fn scope_stat(&self, path: &str) -> Option<ScopeStat> {
        self.inner.as_ref().and_then(|c| c.scope_stat(path))
    }

    /// All recorded events of the given kind, as JSON value trees (payload
    /// fields only; the `t`/`event` envelope is added at serialization).
    pub fn events_of(&self, kind: &str) -> Vec<Value> {
        self.inner.as_ref().map_or_else(Vec::new, |c| c.events_of(kind))
    }

    /// Total number of recorded events.
    pub fn num_events(&self) -> usize {
        self.inner.as_ref().map_or(0, |c| c.num_events())
    }

    /// Snapshot of every counter in name order (empty when disabled).
    /// Powers live introspection surfaces — e.g. the serving layer's
    /// `/stats` endpoint — without going through the JSONL sink.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.inner.as_ref().map_or_else(Vec::new, |c| c.counter_snapshot())
    }

    /// Snapshot of every gauge in name order (empty when disabled).
    pub fn gauges(&self) -> Vec<(&'static str, GaugeStat)> {
        self.inner.as_ref().map_or_else(Vec::new, |c| c.gauge_snapshot())
    }

    /// Snapshot of every histogram in name order (empty when disabled).
    pub fn histograms(&self) -> Vec<(&'static str, HistStat)> {
        self.inner.as_ref().map_or_else(Vec::new, |c| c.hist_snapshot())
    }

    /// Snapshot of every scope path with aggregated stats, in path order
    /// (empty when disabled).
    pub fn scopes(&self) -> Vec<(String, ScopeStat)> {
        self.inner.as_ref().map_or_else(Vec::new, |c| c.scope_snapshot())
    }

    // ------------------------------------------------------------- output

    /// Serializes everything recorded so far as JSONL (one JSON object per
    /// line): events in insertion order, then `scope`/`counter`/`gauge`
    /// aggregates, then a final `summary` line. Empty when disabled.
    pub fn to_jsonl(&self) -> String {
        self.inner.as_ref().map_or_else(String::new, |c| render::jsonl(c))
    }

    /// Writes [`Obs::to_jsonl`] to `w`.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(self.to_jsonl().as_bytes())
    }

    /// Human-readable end-of-run summary: indented scope tree, counters,
    /// and gauges. Empty when disabled.
    pub fn summary(&self) -> String {
        self.inner.as_ref().map_or_else(String::new, |c| render::summary(c))
    }
}

/// RAII guard for a timing scope; records duration under its path on drop.
#[derive(Debug)]
pub struct Scope {
    rec: Option<(Arc<Collector>, String, Instant)>,
}

impl Drop for Scope {
    fn drop(&mut self) {
        if let Some((c, path, started)) = self.rec.take() {
            collector::pop_path();
            c.record_scope(path, started.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        {
            let _s = obs.scope("outer");
            obs.add("n", 5);
            obs.gauge("g", 1.5);
            obs.event("e", &42u32);
        }
        assert_eq!(obs.counter("n"), 0);
        assert_eq!(obs.num_events(), 0);
        assert!(obs.to_jsonl().is_empty());
        assert!(obs.summary().is_empty());
    }

    #[test]
    fn nested_scopes_build_slash_paths() {
        let obs = Obs::enabled();
        {
            let _a = obs.scope("fit");
            {
                let _b = obs.scope("prepare");
                let _c = obs.scope("walks");
            }
            let _d = obs.scope("epoch");
        }
        for path in ["fit", "fit/prepare", "fit/prepare/walks", "fit/epoch"] {
            let stat = obs.scope_stat(path).unwrap_or_else(|| panic!("missing scope {path}"));
            assert_eq!(stat.calls, 1, "{path}");
        }
        assert!(obs.scope_stat("prepare").is_none(), "child must not appear as a root path");
    }

    #[test]
    fn sibling_scopes_aggregate_calls() {
        let obs = Obs::enabled();
        for _ in 0..3 {
            let _s = obs.scope("epoch");
        }
        assert_eq!(obs.scope_stat("epoch").unwrap().calls, 3);
    }

    #[test]
    fn scopes_on_spawned_threads_root_independently_and_count_threads() {
        let obs = Obs::enabled();
        {
            let _outer = obs.scope("fit");
            std::thread::scope(|s| {
                for _ in 0..2 {
                    let obs = obs.clone();
                    s.spawn(move || {
                        let _w = obs.scope("worker");
                    });
                }
            });
        }
        // Worker scopes do not inherit the spawning thread's "fit" prefix.
        let stat = obs.scope_stat("worker").expect("worker scope recorded");
        assert_eq!(stat.calls, 2);
        assert_eq!(stat.threads, 2);
        assert_eq!(obs.scope_stat("fit").map(|s| s.threads), Some(1));
    }

    #[test]
    fn snapshots_list_everything_in_name_order() {
        let obs = Obs::enabled();
        obs.add("b", 2);
        obs.add("a", 1);
        obs.gauge("depth", 3.0);
        {
            let _s = obs.scope("serve");
        }
        assert_eq!(obs.counters(), vec![("a", 1), ("b", 2)]);
        let gauges = obs.gauges();
        assert_eq!(gauges.len(), 1);
        assert_eq!(gauges[0].0, "depth");
        assert_eq!(obs.scopes().len(), 1);
        assert_eq!(obs.scopes()[0].0, "serve");
        // Disabled handles stay empty.
        let off = Obs::disabled();
        assert!(off.counters().is_empty() && off.gauges().is_empty() && off.scopes().is_empty());
    }

    #[test]
    fn counters_and_gauges_aggregate() {
        let obs = Obs::enabled();
        obs.add("rows", 10);
        obs.add("rows", 32);
        for v in [2.0, 4.0, 0.0] {
            obs.gauge("occ", v);
        }
        assert_eq!(obs.counter("rows"), 42);
        let g = obs.gauge_stat("occ").unwrap();
        assert_eq!(g.count, 3);
        assert_eq!(g.min, 0.0);
        assert_eq!(g.max, 4.0);
        assert_eq!(g.last, 0.0);
        assert!((g.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histograms_report_exact_extremes_and_bounded_quantiles() {
        let obs = Obs::enabled();
        // 1..=1000 µs, recorded in an order-independent sweep.
        for v in 1..=1000u32 {
            obs.histogram("lat", f64::from(v));
        }
        let h = obs.hist_stat("lat").expect("recorded");
        assert_eq!(h.count, 1000);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 1000.0);
        // Log-bucket quantiles carry ≤ 12.5% relative error above the
        // exact range (plus the half-bucket midpoint offset).
        assert!((h.p50 - 500.0).abs() / 500.0 < 0.15, "p50 = {}", h.p50);
        assert!((h.p90 - 900.0).abs() / 900.0 < 0.15, "p90 = {}", h.p90);
        assert!((h.p99 - 990.0).abs() / 990.0 < 0.15, "p99 = {}", h.p99);
        assert!(h.p50 <= h.p90 && h.p90 <= h.p99, "quantiles must be monotone");
        // Small exact-bucket values are exact up to the midpoint clamp.
        for _ in 0..10 {
            obs.histogram("tiny", 3.0);
        }
        let t = obs.hist_stat("tiny").unwrap();
        assert_eq!((t.min, t.max), (3.0, 3.0));
        assert_eq!((t.p50, t.p99), (3.0, 3.0));
        // Snapshot lists both, name-ordered.
        let names: Vec<&str> = obs.histograms().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["lat", "tiny"]);
        // Disabled handles stay inert.
        let off = Obs::disabled();
        off.histogram("lat", 5.0);
        assert!(off.hist_stat("lat").is_none() && off.histograms().is_empty());
    }

    #[test]
    fn histogram_handles_degenerate_samples() {
        let obs = Obs::enabled();
        for v in [0.0, -4.0, f64::NAN, f64::INFINITY, 0.4] {
            obs.histogram("edge", v);
        }
        let h = obs.hist_stat("edge").expect("recorded");
        assert_eq!(h.count, 5);
        // Negative/NaN clamp into bucket 0 but min/max stay exact floats
        // (NaN propagates through min/max per f64::min semantics — i.e. is
        // ignored when the other side is a number).
        assert!(h.p50.is_finite() && h.p99.is_finite());
        assert!(h.p50 >= h.min && h.p99 <= h.max);
    }

    #[test]
    fn events_round_trip_through_jsonl() {
        let obs = Obs::enabled();
        obs.event("note", &String::from("hello"));
        obs.add("rows", 7);
        obs.gauge("occ", 1.0);
        {
            let _s = obs.scope("fit");
        }
        let jsonl = obs.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines.len() >= 5, "event + scope + counter + gauge + summary");
        let mut kinds = Vec::new();
        for line in &lines {
            let v: Value = serde_json::from_str(line).expect("every line is valid JSON");
            let Value::Object(map) = v else { panic!("line is not an object: {line}") };
            assert!(matches!(map.get("t"), Some(Value::Number(_))), "missing t: {line}");
            let Some(Value::String(kind)) = map.get("event") else {
                panic!("missing event kind: {line}")
            };
            kinds.push(kind.clone());
        }
        for expected in ["note", "scope", "counter", "gauge", "summary"] {
            assert!(kinds.iter().any(|k| k == expected), "no {expected} record");
        }
        // Non-object payloads land under "value".
        let note = &obs.events_of("note")[0];
        assert_eq!(*note, Value::String("hello".into()));
    }

    #[test]
    fn summary_mentions_scopes_counters_gauges() {
        let obs = Obs::enabled();
        {
            let _a = obs.scope("fit");
            let _b = obs.scope("prepare");
        }
        obs.add("train/batches", 12);
        obs.gauge("prefetch/occupancy", 1.5);
        let s = obs.summary();
        for needle in ["fit", "prepare", "train/batches", "12", "prefetch/occupancy"] {
            assert!(s.contains(needle), "summary missing {needle:?}:\n{s}");
        }
    }
}
