//! # coane-walks
//!
//! Random-walk and context machinery for CoANE (§3.1 of the paper):
//!
//! - [`walker`] — weighted random walks (`p(v_j) = E_ij / Σ_j E_ij`) and the
//!   node2vec biased second-order walk used by baselines,
//! - [`context`] — sliding context windows with boundary padding and
//!   word2vec-style subsampling; groups contexts by their midst node,
//! - [`cooccurrence`] — the co-occurrence matrices **D** and **D¹**, the
//!   combined `D̃ = Dᴺ + D¹`, and the top-`k_p` positive-pair selection of
//!   §3.3.1,
//! - [`sampler`] — alias-method sampling, the contextual noise distribution
//!   `P_V(v) ∝ |context(v)|`, and the pre-/batch-sampling contextual
//!   negative samplers of §3.3.2,
//! - [`analysis`] — neighbourhood-coverage statistics backing Fig. 5.

pub mod analysis;
pub mod context;
pub mod cooccurrence;
pub mod sampler;
pub mod walker;

pub use context::{ContextSet, ContextsConfig, PAD};
pub use cooccurrence::{CoMatrices, PositivePairs};
pub use sampler::{AliasTable, ContextualNegativeSampler, NegativeMode};
pub use walker::{Walk, WalkConfig, Walker};
