//! Neighbourhood-selection analysis backing Fig. 5 of the paper: how do
//! random-walk contexts compare to fixed-hop neighbourhoods in label purity
//! and coverage?

use coane_graph::{ops::k_hop_neighborhood, AttributedGraph, NodeId};

use crate::context::{ContextSet, PAD};

/// Per-strategy coverage statistics for one anchor node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoverageStats {
    /// Number of distinct nodes reached (excluding the anchor).
    pub region_size: usize,
    /// Fraction of reached nodes sharing the anchor's label.
    pub label_purity: f64,
    /// Mean attribute cosine similarity between anchor and reached nodes.
    pub attr_similarity: f64,
}

fn stats_for(g: &AttributedGraph, anchor: NodeId, reached: &[NodeId]) -> CoverageStats {
    let labels = g.labels().expect("labeled graph required for coverage analysis");
    let anchor_label = labels[anchor as usize];
    if reached.is_empty() {
        return CoverageStats { region_size: 0, label_purity: 0.0, attr_similarity: 0.0 };
    }
    let same = reached.iter().filter(|&&u| labels[u as usize] == anchor_label).count();
    let sim: f64 = reached.iter().map(|&u| g.attrs().cosine(anchor, u) as f64).sum::<f64>()
        / reached.len() as f64;
    CoverageStats {
        region_size: reached.len(),
        label_purity: same as f64 / reached.len() as f64,
        attr_similarity: sim,
    }
}

/// Coverage of node `v`'s random-walk contexts: the distinct non-PAD nodes
/// occurring in `context(v)`, excluding `v` itself.
pub fn walk_context_coverage(
    g: &AttributedGraph,
    contexts: &ContextSet,
    v: NodeId,
) -> CoverageStats {
    let mut reached: Vec<NodeId> =
        contexts.slots_of(v).iter().copied().filter(|&u| u != PAD && u != v).collect();
    reached.sort_unstable();
    reached.dedup();
    stats_for(g, v, &reached)
}

/// Coverage of node `v`'s fixed `hops`-hop neighbourhood (the GAE/VGAE-style
/// receptive field Fig. 5b contrasts against).
pub fn k_hop_coverage(g: &AttributedGraph, v: NodeId, hops: usize) -> CoverageStats {
    let reached = k_hop_neighborhood(g, v, hops);
    stats_for(g, v, &reached)
}

/// Averages [`walk_context_coverage`] and [`k_hop_coverage`] over all nodes,
/// returning `(walk, two_hop)` means — the quantitative form of Fig. 5's
/// claim that walk regions are more concentrated in the anchor's cluster.
pub fn mean_coverage(
    g: &AttributedGraph,
    contexts: &ContextSet,
    hops: usize,
) -> (CoverageStats, CoverageStats) {
    let n = g.num_nodes();
    let mut acc = [(0usize, 0.0f64, 0.0f64); 2];
    for v in 0..n as NodeId {
        for (k, s) in [walk_context_coverage(g, contexts, v), k_hop_coverage(g, v, hops)]
            .into_iter()
            .enumerate()
        {
            acc[k].0 += s.region_size;
            acc[k].1 += s.label_purity;
            acc[k].2 += s.attr_similarity;
        }
    }
    let mk = |a: (usize, f64, f64)| CoverageStats {
        region_size: a.0 / n,
        label_purity: a.1 / n as f64,
        attr_similarity: a.2 / n as f64,
    };
    (mk(acc[0]), mk(acc[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextsConfig;
    use crate::walker::{WalkConfig, Walker};
    use coane_datasets::{social_circle_graph, SocialCircleConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn walk_contexts_purer_than_random_on_clustered_graph() {
        let cfg = SocialCircleConfig {
            num_nodes: 300,
            num_communities: 3,
            num_edges: 900,
            mixing: 0.1,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let (g, _) = social_circle_graph(&cfg, &mut rng);
        let walker = Walker::new(&g, WalkConfig { walk_length: 20, ..Default::default() });
        let walks = walker.generate_all(2);
        let contexts = ContextSet::build(
            &walks,
            g.num_nodes(),
            &ContextsConfig { context_size: 5, subsample_t: f64::INFINITY, seed: 0 },
        );
        let (walk_stats, hop_stats) = mean_coverage(&g, &contexts, 2);
        // With 3 communities a random baseline is ~1/3 purity; both local
        // strategies must beat it clearly on a low-mixing graph.
        assert!(walk_stats.label_purity > 0.55, "walk purity {}", walk_stats.label_purity);
        assert!(hop_stats.label_purity > 0.45, "hop purity {}", hop_stats.label_purity);
        assert!(walk_stats.region_size > 0);
        assert!(hop_stats.region_size > 0);
    }

    #[test]
    fn empty_region_is_zeroed() {
        let cfg = SocialCircleConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (g, _) = social_circle_graph(&cfg, &mut rng);
        // A context set built from zero walks has no coverage anywhere.
        let contexts = ContextSet::build(
            &[],
            g.num_nodes(),
            &ContextsConfig { context_size: 3, subsample_t: f64::INFINITY, seed: 0 },
        );
        let s = walk_context_coverage(&g, &contexts, 0);
        assert_eq!(s, CoverageStats { region_size: 0, label_purity: 0.0, attr_similarity: 0.0 });
    }
}
