//! Context co-occurrence matrices (§3.1, §3.3.1).
//!
//! `D_ij` counts how often `v_j` occurs in the contexts of `v_i`; `D¹` keeps
//! only the entries backed by a real edge (`E_ij > 0`). The positive graph
//! likelihood operates on `D̃ = Dᴺ + D¹` — the row-normalized `D` plus the
//! *raw* one-hop counts, which (per the paper's RWR argument) deliberately
//! over-weights direct neighbours — restricted to each row's top-`k_p`
//! entries to suppress noisy low-count pairs.

use coane_graph::{AttributedGraph, NodeId};

use crate::context::{ContextSet, PAD};

/// Sparse row-major counts with `f32` values (CSR).
#[derive(Clone, Debug, PartialEq)]
pub struct SparseCounts {
    n: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl SparseCounts {
    fn from_sorted_pairs(n: usize, pairs: &[(u32, u32)]) -> Self {
        let mut indptr = vec![0usize; n + 1];
        let mut indices = Vec::new();
        let mut values: Vec<f32> = Vec::new();
        let mut k = 0usize;
        for i in 0..n as u32 {
            while k < pairs.len() && pairs[k].0 == i {
                let j = pairs[k].1;
                let mut cnt = 0u32;
                while k < pairs.len() && pairs[k] == (i, j) {
                    cnt += 1;
                    k += 1;
                }
                indices.push(j);
                values.push(cnt as f32);
            }
            indptr[i as usize + 1] = indices.len();
        }
        Self { n, indptr, indices, values }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.n
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Row view `(column indices, values)`.
    pub fn row(&self, i: NodeId) -> (&[u32], &[f32]) {
        let (s, e) = (self.indptr[i as usize], self.indptr[i as usize + 1]);
        (&self.indices[s..e], &self.values[s..e])
    }

    /// Value at `(i, j)` (0 when absent).
    pub fn get(&self, i: NodeId, j: NodeId) -> f32 {
        let (idx, val) = self.row(i);
        idx.binary_search(&j).map(|p| val[p]).unwrap_or(0.0)
    }

    /// Sum of row `i`.
    pub fn row_sum(&self, i: NodeId) -> f32 {
        self.row(i).1.iter().sum()
    }
}

/// The pair of co-occurrence matrices `D` and `D¹` plus the combined `D̃`.
#[derive(Clone, Debug)]
pub struct CoMatrices {
    /// Full co-occurrence counts `D`.
    pub d: SparseCounts,
    /// Edge-masked counts `D¹` (`D¹_ij = D_ij` iff `E_ij > 0`).
    pub d1: SparseCounts,
    /// `D̃ = Dᴺ + D¹` with `Dᴺ` the row-normalized `D`.
    pub d_tilde: SparseCounts,
}

impl CoMatrices {
    /// Builds all three matrices from the extracted contexts. Diagonal
    /// entries (a node co-occurring with itself) are recorded in `D` but the
    /// likelihood machinery skips them via [`PositivePairs`].
    pub fn build(contexts: &ContextSet, graph: &AttributedGraph) -> Self {
        Self::build_obs(contexts, graph, &coane_obs::Obs::disabled())
    }

    /// [`CoMatrices::build`] with phase telemetry: construction runs under a
    /// `cooccurrence` timing scope and records the nnz of `D` and `D¹`.
    /// Telemetry is observation-only — the matrices are bit-identical for
    /// any `obs` state.
    pub fn build_obs(contexts: &ContextSet, graph: &AttributedGraph, obs: &coane_obs::Obs) -> Self {
        let _scope = obs.scope("cooccurrence");
        let n = contexts.num_nodes();
        assert_eq!(n, graph.num_nodes(), "contexts/graph node count mismatch");
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for v in 0..n as NodeId {
            for w in contexts.contexts_of(v) {
                for &u in w {
                    if u != PAD && u != v {
                        pairs.push((v, u));
                    }
                }
            }
        }
        pairs.sort_unstable();
        let d = SparseCounts::from_sorted_pairs(n, &pairs);
        Self::finish(d, graph, obs)
    }

    /// [`CoMatrices::build`] with blocked accumulation: `D` is assembled
    /// over fixed node ranges `[0, B), [B, 2B), …` merged in ascending block
    /// order. Each row of `D` depends only on its own center's contexts, and
    /// pairs sort identically whether the sort covers one block or all of
    /// them, so the result is **bit-identical** to the monolithic builder
    /// for every `block_nodes ≥ 1` (locked by `tests/streaming.rs`). What
    /// changes is peak memory: the transient pair buffer shrinks from one
    /// entry per context slot *globally* to one per slot *per block*.
    ///
    /// # Panics
    /// Panics if `block_nodes` is zero.
    pub fn build_blocked(
        contexts: &ContextSet,
        graph: &AttributedGraph,
        block_nodes: usize,
    ) -> Self {
        Self::build_blocked_obs(contexts, graph, block_nodes, &coane_obs::Obs::disabled())
    }

    /// [`CoMatrices::build_blocked`] with phase telemetry (same counters as
    /// [`CoMatrices::build_obs`]).
    pub fn build_blocked_obs(
        contexts: &ContextSet,
        graph: &AttributedGraph,
        block_nodes: usize,
        obs: &coane_obs::Obs,
    ) -> Self {
        let _scope = obs.scope("cooccurrence");
        assert!(block_nodes >= 1, "block_nodes must be positive");
        let n = contexts.num_nodes();
        assert_eq!(n, graph.num_nodes(), "contexts/graph node count mismatch");
        let mut indptr = vec![0usize; n + 1];
        let mut indices: Vec<u32> = Vec::new();
        let mut values: Vec<f32> = Vec::new();
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut start = 0usize;
        while start < n {
            let end = (start + block_nodes).min(n);
            pairs.clear();
            for v in start as NodeId..end as NodeId {
                for w in contexts.contexts_of(v) {
                    for &u in w {
                        if u != PAD && u != v {
                            pairs.push((v, u));
                        }
                    }
                }
            }
            pairs.sort_unstable();
            // Append this block's rows: identical run-length counting to
            // `from_sorted_pairs`, offset into the global CSR.
            let mut k = 0usize;
            for i in start as u32..end as u32 {
                while k < pairs.len() && pairs[k].0 == i {
                    let j = pairs[k].1;
                    let mut cnt = 0u32;
                    while k < pairs.len() && pairs[k] == (i, j) {
                        cnt += 1;
                        k += 1;
                    }
                    indices.push(j);
                    values.push(cnt as f32);
                }
                indptr[i as usize + 1] = indices.len();
            }
            start = end;
        }
        let d = SparseCounts { n, indptr, indices, values };
        Self::finish(d, graph, obs)
    }

    /// Derives `D¹` and `D̃` from an assembled `D` — shared by the
    /// monolithic and blocked builders so the two paths cannot drift.
    fn finish(d: SparseCounts, graph: &AttributedGraph, obs: &coane_obs::Obs) -> Self {
        let n = d.num_rows();
        // D¹: restrict to real edges.
        let mut d1_indptr = vec![0usize; n + 1];
        let mut d1_indices = Vec::new();
        let mut d1_values = Vec::new();
        for i in 0..n as NodeId {
            let (idx, val) = d.row(i);
            for (&j, &v) in idx.iter().zip(val) {
                if graph.has_edge(i, j) {
                    d1_indices.push(j);
                    d1_values.push(v);
                }
            }
            d1_indptr[i as usize + 1] = d1_indices.len();
        }
        let d1 = SparseCounts { n, indptr: d1_indptr, indices: d1_indices, values: d1_values };

        // D̃ = row-normalize(D) + D¹. D and D¹ share the sparsity pattern of D
        // (D¹ ⊆ D), so we can emit D̃ on D's pattern.
        let mut dt_values = Vec::with_capacity(d.nnz());
        for i in 0..n as NodeId {
            let (idx, val) = d.row(i);
            let sum: f32 = val.iter().sum();
            for (&j, &v) in idx.iter().zip(val) {
                let normalized = if sum > 0.0 { v / sum } else { 0.0 };
                let one_hop = if graph.has_edge(i, j) { v } else { 0.0 };
                dt_values.push(normalized + one_hop);
            }
        }
        let d_tilde = SparseCounts {
            n,
            indptr: d.indptr.clone(),
            indices: d.indices.clone(),
            values: dt_values,
        };
        if obs.is_enabled() {
            obs.add("cooccurrence/nnz_d", d.nnz() as u64);
            obs.add("cooccurrence/nnz_d1", d1.nnz() as u64);
        }
        Self { d, d1, d_tilde }
    }
}

/// The top-`k_p` positive pairs per node, flattened as `(i, j, D̃_ij)`
/// triples — the support of `L_pos` (§3.3.1).
#[derive(Clone, Debug)]
pub struct PositivePairs {
    /// `k_p = max_v |context(v)|`.
    pub k_p: usize,
    /// Pair ranges per node: pairs of node `i` are `offsets[i]..offsets[i+1]`.
    pub offsets: Vec<usize>,
    /// Flattened `(i, j, weight)` triples, grouped by `i`.
    pub pairs: Vec<(NodeId, NodeId, f32)>,
}

impl PositivePairs {
    /// Selects, for every node, the `k_p` highest-weight entries of its `D̃`
    /// row (excluding the diagonal).
    pub fn select(co: &CoMatrices, k_p: usize) -> Self {
        assert!(k_p > 0, "k_p must be positive");
        let n = co.d_tilde.num_rows();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut pairs = Vec::new();
        let mut scratch: Vec<(f32, NodeId)> = Vec::new();
        for i in 0..n as NodeId {
            let (idx, val) = co.d_tilde.row(i);
            scratch.clear();
            scratch.extend(idx.iter().zip(val).filter(|&(&j, _)| j != i).map(|(&j, &v)| (v, j)));
            if scratch.len() > k_p {
                // Partial selection of the k_p largest weights.
                scratch.select_nth_unstable_by(k_p - 1, |a, b| {
                    b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal)
                });
                scratch.truncate(k_p);
            }
            for &(w, j) in scratch.iter() {
                pairs.push((i, j, w));
            }
            offsets.push(pairs.len());
        }
        Self { k_p, offsets, pairs }
    }

    /// Pairs of node `i`.
    pub fn pairs_of(&self, i: NodeId) -> &[(NodeId, NodeId, f32)] {
        &self.pairs[self.offsets[i as usize]..self.offsets[i as usize + 1]]
    }

    /// Total number of selected pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pairs were selected.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextsConfig;
    use coane_graph::{GraphBuilder, NodeAttributes};

    fn graph_path3() -> AttributedGraph {
        let mut b = GraphBuilder::new(3, 3);
        b.add_edges(&[(0, 1), (1, 2)]);
        b.with_attrs(NodeAttributes::identity(3)).build()
    }

    fn cs(walks: &[Vec<NodeId>], n: usize, c: usize) -> ContextSet {
        ContextSet::build(
            walks,
            n,
            &ContextsConfig { context_size: c, subsample_t: f64::INFINITY, seed: 0 },
        )
    }

    #[test]
    fn d_counts_match_bruteforce() {
        let g = graph_path3();
        let walks = vec![vec![0, 1, 2], vec![1, 0, 1]];
        let contexts = cs(&walks, 3, 3);
        let co = CoMatrices::build(&contexts, &g);
        // brute force count
        let mut brute = vec![vec![0f32; 3]; 3];
        for v in 0..3u32 {
            for w in contexts.contexts_of(v) {
                for &u in w {
                    if u != PAD && u != v {
                        brute[v as usize][u as usize] += 1.0;
                    }
                }
            }
        }
        for i in 0..3u32 {
            for j in 0..3u32 {
                assert_eq!(co.d.get(i, j), brute[i as usize][j as usize], "({i},{j})");
            }
        }
    }

    #[test]
    fn d1_masked_to_edges() {
        let g = graph_path3(); // 0-1, 1-2; no 0-2 edge
        let walks = vec![vec![0, 1, 2, 1, 0]];
        let contexts = cs(&walks, 3, 5);
        let co = CoMatrices::build(&contexts, &g);
        assert!(co.d.get(0, 2) > 0.0, "0 and 2 co-occur in the window");
        assert_eq!(co.d1.get(0, 2), 0.0, "but share no edge");
        assert_eq!(co.d1.get(0, 1), co.d.get(0, 1));
    }

    #[test]
    fn d_tilde_combines_normalized_and_one_hop() {
        let g = graph_path3();
        let walks = vec![vec![0, 1, 2]];
        let contexts = cs(&walks, 3, 3);
        let co = CoMatrices::build(&contexts, &g);
        for i in 0..3u32 {
            let (idx, _) = co.d.row(i);
            let row_sum = co.d.row_sum(i);
            for &j in idx {
                let want =
                    co.d.get(i, j) / row_sum + if g.has_edge(i, j) { co.d.get(i, j) } else { 0.0 };
                assert!((co.d_tilde.get(i, j) - want).abs() < 1e-6, "({i},{j})");
            }
        }
    }

    #[test]
    fn positive_pairs_top_k_ordering() {
        let g = {
            let mut b = GraphBuilder::new(4, 4);
            b.add_edges(&[(0, 1), (0, 2), (0, 3)]);
            b.with_attrs(NodeAttributes::identity(4)).build()
        };
        // Node 0's contexts: neighbor 1 appears 3×, 2 appears 1×, 3 appears 1×.
        let walks = vec![vec![0, 1], vec![0, 1], vec![0, 1], vec![0, 2], vec![0, 3]];
        let contexts = cs(&walks, 4, 3);
        let co = CoMatrices::build(&contexts, &g);
        let pp = PositivePairs::select(&co, 1);
        let top = pp.pairs_of(0);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].1, 1, "highest-weight neighbor kept");
    }

    #[test]
    fn positive_pairs_exclude_diagonal() {
        let g = graph_path3();
        let walks = vec![vec![1, 0, 1, 0, 1]];
        let contexts = cs(&walks, 3, 5);
        let co = CoMatrices::build(&contexts, &g);
        let pp = PositivePairs::select(&co, 10);
        for &(i, j, _) in &pp.pairs {
            assert_ne!(i, j, "diagonal pair selected");
        }
    }

    #[test]
    fn pair_offsets_consistent() {
        let g = graph_path3();
        let walks = vec![vec![0, 1, 2], vec![2, 1, 0]];
        let contexts = cs(&walks, 3, 3);
        let co = CoMatrices::build(&contexts, &g);
        let pp = PositivePairs::select(&co, 2);
        assert_eq!(*pp.offsets.last().unwrap(), pp.len());
        for i in 0..3u32 {
            for &(src, _, w) in pp.pairs_of(i) {
                assert_eq!(src, i);
                assert!(w > 0.0);
            }
        }
    }

    #[test]
    fn blocked_build_is_bit_identical_to_monolithic() {
        let g = graph_path3();
        let walks = vec![vec![0, 1, 2, 1, 0], vec![2, 1, 0, 1, 2], vec![1, 1, 0]];
        let contexts = cs(&walks, 3, 5);
        let reference = CoMatrices::build(&contexts, &g);
        for block_nodes in [1usize, 2, 3, 100] {
            let blocked = CoMatrices::build_blocked(&contexts, &g, block_nodes);
            assert_eq!(blocked.d, reference.d, "D differs at block={block_nodes}");
            assert_eq!(blocked.d1, reference.d1, "D1 differs at block={block_nodes}");
            assert_eq!(blocked.d_tilde, reference.d_tilde, "Dt differs at block={block_nodes}");
        }
    }

    #[test]
    fn empty_contexts_produce_empty_rows() {
        let g = graph_path3();
        let walks = vec![vec![0, 1]]; // node 2 never appears
        let contexts = cs(&walks, 3, 3);
        let co = CoMatrices::build(&contexts, &g);
        assert_eq!(co.d.row(2).0.len(), 0);
        let pp = PositivePairs::select(&co, 3);
        assert!(pp.pairs_of(2).is_empty());
    }
}
