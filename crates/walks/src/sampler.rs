//! Sampling utilities: the alias method and the contextual negative sampler
//! of §3.3.2.
//!
//! The contextual noise distribution is
//! `P_V(v) = |context(v)| / Σ_u |context(u)|`; negatives for a target `v_i`
//! are drawn from `V*(v_i) = {v ∉ context(v_i)}`. Two strategies mirror the
//! paper: **pre-sampling** draws a large offline pool from `P_V` once and, at
//! use time, takes the first `k` pool entries outside the target's context;
//! **batch-sampling** draws negatives only from the current training batch
//! (weighted by context counts), avoiding global probability computation.

use coane_graph::NodeId;
use rand::Rng;

use crate::context::ContextSet;

/// Walker–Vose alias table for O(1) sampling from a discrete distribution.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds from non-negative weights (not all zero).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative value, or sums to 0.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty distribution");
        assert!(weights.iter().all(|&w| w >= 0.0), "negative weight");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "all-zero distribution");
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] = prob[l as usize] + prob[s as usize] - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Remaining entries have probability 1 (up to float error).
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen_bool(self.prob[i].clamp(0.0, 1.0)) {
            i as u32
        } else {
            self.alias[i]
        }
    }
}

/// Which negative-sampling strategy to use (§3.3.2; the paper pre-samples on
/// the denser WebKB/Flickr graphs and batch-samples on the sparser citation
/// graphs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NegativeMode {
    /// Offline pool drawn from the contextual distribution.
    PreSampling {
        /// Pool size as a multiple of `k` (the paper draws "more than k").
        pool_factor: usize,
    },
    /// Negatives drawn from the current minibatch.
    BatchSampling,
}

/// Contextual negative sampler.
pub struct ContextualNegativeSampler {
    counts: Vec<f64>,
    table: AliasTable,
    /// Sorted distinct context members per node (for the `∉ context(v)` test).
    members: Vec<Vec<NodeId>>,
}

impl ContextualNegativeSampler {
    /// Builds the sampler from extracted contexts. Nodes with zero contexts
    /// get a tiny floor weight so the distribution stays valid.
    pub fn new(contexts: &ContextSet) -> Self {
        let counts: Vec<f64> = contexts.counts().iter().map(|&c| (c as f64).max(1e-9)).collect();
        let table = AliasTable::new(&counts);
        let members = (0..contexts.num_nodes()).map(|v| contexts.members_of(v as NodeId)).collect();
        Self { counts, table, members }
    }

    /// The contextual probability `P_V(v)`.
    pub fn probability(&self, v: NodeId) -> f64 {
        self.counts[v as usize] / self.counts.iter().sum::<f64>()
    }

    /// Whether `u` occurs in the contexts of `target`.
    pub fn in_context(&self, target: NodeId, u: NodeId) -> bool {
        self.members[target as usize].binary_search(&u).is_ok()
    }

    /// Draws an offline pool of `size` nodes from `P_V` (pre-sampling phase).
    pub fn draw_pool<R: Rng>(&self, size: usize, rng: &mut R) -> Vec<NodeId> {
        (0..size).map(|_| self.table.sample(rng)).collect()
    }

    /// Pre-sampling: first `k` pool entries outside `context(target)` and
    /// different from `target`. Falls back to fresh draws when the pool is
    /// exhausted, so exactly `k` negatives are always returned (assuming the
    /// graph has ≥ `k + 1` candidate nodes outside the context).
    pub fn negatives_from_pool<R: Rng>(
        &self,
        target: NodeId,
        k: usize,
        pool: &[NodeId],
        rng: &mut R,
    ) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(k);
        for &u in pool {
            if out.len() == k {
                return out;
            }
            if u != target && !self.in_context(target, u) {
                out.push(u);
            }
        }
        let mut guard = 0usize;
        while out.len() < k && guard < 10_000 * k.max(1) {
            let u = self.table.sample(rng);
            if u != target && !self.in_context(target, u) {
                out.push(u);
            }
            guard += 1;
        }
        out
    }

    /// Batch-sampling: draws `k` negatives from `batch`, weighted by context
    /// counts, skipping the target and its context members. Returns fewer
    /// than `k` when the batch offers no admissible candidates.
    pub fn negatives_from_batch<R: Rng>(
        &self,
        target: NodeId,
        k: usize,
        batch: &[NodeId],
        rng: &mut R,
    ) -> Vec<NodeId> {
        let candidates: Vec<NodeId> =
            batch.iter().copied().filter(|&u| u != target && !self.in_context(target, u)).collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        let weights: Vec<f64> = candidates.iter().map(|&u| self.counts[u as usize]).collect();
        let table = AliasTable::new(&weights);
        (0..k).map(|_| candidates[table.sample(rng) as usize]).collect()
    }

    /// Draws `k` negatives for `target` per `mode`, managing the pool
    /// internally (the offline pool is redrawn each call at
    /// `pool_factor * k`; callers wanting to amortize the pool should use
    /// [`Self::draw_pool`] + [`Self::negatives_from_pool`] directly).
    pub fn negatives<R: Rng>(
        &self,
        target: NodeId,
        k: usize,
        mode: NegativeMode,
        batch: &[NodeId],
        rng: &mut R,
    ) -> Vec<NodeId> {
        match mode {
            NegativeMode::PreSampling { pool_factor } => {
                let pool = self.draw_pool(pool_factor.max(2) * k, rng);
                self.negatives_from_pool(target, k, &pool, rng)
            }
            NegativeMode::BatchSampling => self.negatives_from_batch(target, k, batch, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ContextSet, ContextsConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn alias_table_matches_distribution() {
        let weights = [1.0, 3.0, 6.0];
        let table = AliasTable::new(&weights);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut counts = [0usize; 3];
        let draws = 60_000;
        for _ in 0..draws {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let got = c as f64 / draws as f64;
            let want = weights[i] / 10.0;
            assert!((got - want).abs() < 0.01, "outcome {i}: {got} vs {want}");
        }
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn alias_rejects_zero_mass() {
        AliasTable::new(&[0.0, 0.0]);
    }

    fn contexts_fixture() -> ContextSet {
        // node 0: 3 contexts; node 1: 2; node 2: 1; node 3: appears only as
        // neighbor. Contexts of 0 contain {1}; of 1 contain {0, 2}.
        let walks = vec![vec![0, 1, 0, 1, 0], vec![1, 2, 3]];
        ContextSet::build(
            &walks,
            4,
            &ContextsConfig { context_size: 3, subsample_t: f64::INFINITY, seed: 0 },
        )
    }

    #[test]
    fn contextual_probability_proportional_to_counts() {
        let cs = contexts_fixture();
        let s = ContextualNegativeSampler::new(&cs);
        assert!(s.probability(0) > s.probability(2));
        let total: f64 = (0..4).map(|v| s.probability(v)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pool_negatives_avoid_context() {
        let cs = contexts_fixture();
        let s = ContextualNegativeSampler::new(&cs);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let pool = s.draw_pool(200, &mut rng);
        let negs = s.negatives_from_pool(0, 5, &pool, &mut rng);
        assert_eq!(negs.len(), 5);
        for &u in &negs {
            assert_ne!(u, 0);
            assert!(!s.in_context(0, u), "negative {u} is in context(0)");
        }
    }

    #[test]
    fn batch_negatives_come_from_batch() {
        let cs = contexts_fixture();
        let s = ContextualNegativeSampler::new(&cs);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        // context(0) = {0,1}; batch = {1, 2, 3}; admissible = {2, 3}
        let negs = s.negatives_from_batch(0, 10, &[1, 2, 3], &mut rng);
        assert_eq!(negs.len(), 10);
        for &u in &negs {
            assert!(u == 2 || u == 3, "negative {u} not admissible");
        }
    }

    #[test]
    fn batch_negatives_empty_when_all_in_context() {
        let cs = contexts_fixture();
        let s = ContextualNegativeSampler::new(&cs);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let negs = s.negatives_from_batch(0, 4, &[0, 1], &mut rng);
        assert!(negs.is_empty());
    }

    #[test]
    fn unified_entrypoint_modes() {
        let cs = contexts_fixture();
        let s = ContextualNegativeSampler::new(&cs);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let pre = s.negatives(1, 3, NegativeMode::PreSampling { pool_factor: 4 }, &[], &mut rng);
        assert_eq!(pre.len(), 3);
        let batch = s.negatives(1, 3, NegativeMode::BatchSampling, &[0, 3], &mut rng);
        for &u in &batch {
            assert_eq!(u, 3, "only node 3 is outside context(1) within the batch");
        }
    }
}
