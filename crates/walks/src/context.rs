//! Context extraction (§3.1).
//!
//! A fixed odd window of size `c` slides over each walk; the node at the
//! window's midst is the context's *center*. Positions outside the walk are
//! padded with [`PAD`] (the paper pads "like the image padding for CNN";
//! downstream the pad slots contribute all-zero attribute rows). Word2vec
//! subsampling discards contexts of over-frequent centers with probability
//! `1 − √(t / f(v))`, except at walk position 0 so that every start node
//! keeps at least one context.

use coane_graph::NodeId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::walker::{node_frequencies, Walk, Walker};

/// Sentinel for an empty (padded) context slot.
pub const PAD: NodeId = NodeId::MAX;

/// Context-extraction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ContextsConfig {
    /// Window size `c` (odd, ≥ 1). The paper tunes `c ∈ {3,5,7,9,11}`.
    pub context_size: usize,
    /// Subsampling threshold `t` (the paper uses 1e-5); `f(v)` is measured as
    /// a relative frequency over all walk positions. Set to `f64::INFINITY`
    /// to disable subsampling.
    pub subsample_t: f64,
    /// Seed of the subsampling RNG.
    pub seed: u64,
}

impl Default for ContextsConfig {
    fn default() -> Self {
        Self { context_size: 5, subsample_t: 1e-5, seed: 7 }
    }
}

/// All extracted contexts, grouped by center node.
///
/// The contexts of node `v` are the consecutive `c`-slot rows
/// `offsets[v]..offsets[v+1]` of the internal slot buffer — the flattened
/// form of the paper's stacked attribute-context matrix `R_v`.
#[derive(Clone, Debug)]
pub struct ContextSet {
    c: usize,
    n: usize,
    /// Context-range offsets per node, length `n + 1` (units: contexts).
    offsets: Vec<usize>,
    /// Flattened windows, `num_contexts() * c` slots, PAD-padded.
    slots: Vec<NodeId>,
}

impl ContextSet {
    /// Extracts contexts from `walks` over an `n`-node graph.
    ///
    /// # Panics
    /// Panics if `context_size` is even or zero.
    pub fn build(walks: &[Walk], n: usize, cfg: &ContextsConfig) -> Self {
        Self::build_obs(walks, n, cfg, &coane_obs::Obs::disabled())
    }

    /// [`ContextSet::build`] with phase telemetry: extraction runs under a
    /// `contexts` timing scope and records kept/dropped context counters.
    /// Telemetry is observation-only — the result is bit-identical for any
    /// `obs` state.
    ///
    /// # Panics
    /// Panics if `context_size` is even or zero.
    pub fn build_obs(walks: &[Walk], n: usize, cfg: &ContextsConfig, obs: &coane_obs::Obs) -> Self {
        let _scope = obs.scope("contexts");
        assert!(cfg.context_size >= 1 && cfg.context_size % 2 == 1, "context size must be odd");
        let c = cfg.context_size;
        let half = c / 2;
        let freq = node_frequencies(walks, n);
        let total: u64 = freq.iter().sum();
        // Discard probability per node: max(0, 1 − √(t / f(v))).
        let p_discard: Vec<f64> = freq
            .iter()
            .map(|&f| {
                if f == 0 || total == 0 {
                    return 0.0;
                }
                let rel = f as f64 / total as f64;
                (1.0 - (cfg.subsample_t / rel).sqrt()).max(0.0)
            })
            .collect();

        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        // First pass: count surviving contexts per center. We must record the
        // survival decisions to replay them; store (walk idx, pos) instead.
        let mut kept: Vec<(u32, u32)> = Vec::new();
        let mut counts = vec![0usize; n];
        for (wi, walk) in walks.iter().enumerate() {
            for (pos, &center) in walk.iter().enumerate() {
                let keep = pos == 0 || !rng.gen_bool(p_discard[center as usize]);
                if keep {
                    kept.push((wi as u32, pos as u32));
                    counts[center as usize] += 1;
                }
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for &cnt in &counts {
            offsets.push(offsets.last().unwrap() + cnt);
        }
        let total_ctx = *offsets.last().unwrap();
        let mut slots = vec![PAD; total_ctx * c];
        let mut cursor = offsets[..n].to_vec();
        for &(wi, pos) in &kept {
            let walk = &walks[wi as usize];
            let pos = pos as usize;
            let center = walk[pos];
            let row = cursor[center as usize];
            cursor[center as usize] += 1;
            let dst = &mut slots[row * c..(row + 1) * c];
            for (k, slot) in dst.iter_mut().enumerate() {
                let rel = pos as isize + k as isize - half as isize;
                if rel >= 0 && (rel as usize) < walk.len() {
                    *slot = walk[rel as usize];
                }
            }
        }
        if obs.is_enabled() {
            let positions: u64 = walks.iter().map(|w| w.len() as u64).sum();
            obs.add("contexts/kept", total_ctx as u64);
            obs.add("contexts/subsample_dropped", positions - total_ctx as u64);
        }
        Self { c, n, offsets, slots }
    }

    /// Streaming [`ContextSet::build`]: extracts the same contexts without
    /// ever materializing all `r·n` walks.
    ///
    /// See [`ContextSet::build_streamed_obs`] for the contract.
    pub fn build_streamed(
        walker: &Walker,
        n: usize,
        block_size: usize,
        cfg: &ContextsConfig,
    ) -> Self {
        Self::build_streamed_obs(walker, n, block_size, cfg, &coane_obs::Obs::disabled())
    }

    /// Streaming context extraction. Bit-identical to running
    /// [`ContextSet::build_obs`] on `walker.generate_all(_)` — same
    /// `offsets`, same `slots` — but peak walk storage is a handful of
    /// `block_size`-walk blocks instead of the whole corpus.
    ///
    /// The builder makes three passes over the walk stream (walks are
    /// regenerated per pass; per-walk seeding makes regeneration exact):
    ///
    /// 1. **Frequencies** — accumulate `f(v)` over all walk positions, from
    ///    which the per-node discard probabilities derive exactly as in the
    ///    materialized builder.
    /// 2. **Subsampling replay** — consume the sequential subsampling RNG in
    ///    walk-major position order (skipping position 0, which is always
    ///    kept — the identical consumption pattern), recording one keep-bit
    ///    per position and per-center survivor counts.
    /// 3. **Slot fill** — with per-node offsets now known, re-walk the
    ///    stream and copy each surviving window into its final row.
    ///
    /// Because the subsampling RNG lives on the consuming thread and blocks
    /// arrive in order through the bounded prefetch channel, the result is
    /// independent of thread count. Also records the `walks/count` and
    /// `walks/steps` counters that [`Walker::generate_all_obs`] would have
    /// emitted, so telemetry stays comparable across the two paths.
    ///
    /// # Panics
    /// Panics if `context_size` is even or zero, or `block_size` is zero.
    pub fn build_streamed_obs(
        walker: &Walker,
        n: usize,
        block_size: usize,
        cfg: &ContextsConfig,
        obs: &coane_obs::Obs,
    ) -> Self {
        let _scope = obs.scope("contexts");
        assert!(cfg.context_size >= 1 && cfg.context_size % 2 == 1, "context size must be odd");
        let c = cfg.context_size;
        let half = c / 2;
        // How far ahead the producer may run (in blocks). Purely a
        // throughput knob: consumption order is block order regardless.
        const DEPTH: usize = 2;

        // Pass 1: global node frequencies.
        let mut freq = vec![0u64; n];
        let mut walk_count = 0u64;
        walker.stream_blocks(block_size, DEPTH, |_, block| {
            walk_count += block.len() as u64;
            for walk in &block {
                for &v in walk {
                    freq[v as usize] += 1;
                }
            }
        });
        let total: u64 = freq.iter().sum();
        let p_discard: Vec<f64> = freq
            .iter()
            .map(|&f| {
                if f == 0 || total == 0 {
                    return 0.0;
                }
                let rel = f as f64 / total as f64;
                (1.0 - (cfg.subsample_t / rel).sqrt()).max(0.0)
            })
            .collect();

        // Pass 2: replay the subsampling decisions (same RNG, same
        // consumption order as the materialized builder), keeping one bit
        // per walk position plus per-center survivor counts.
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut keep_bits: Vec<u64> = vec![0u64; (total as usize).div_ceil(64)];
        let mut counts = vec![0usize; n];
        let mut bit = 0usize;
        walker.stream_blocks(block_size, DEPTH, |_, block| {
            for walk in &block {
                for (pos, &center) in walk.iter().enumerate() {
                    let keep = pos == 0 || !rng.gen_bool(p_discard[center as usize]);
                    if keep {
                        keep_bits[bit / 64] |= 1u64 << (bit % 64);
                        counts[center as usize] += 1;
                    }
                    bit += 1;
                }
            }
        });

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for &cnt in &counts {
            offsets.push(offsets.last().unwrap() + cnt);
        }
        let total_ctx = *offsets.last().unwrap();

        // Pass 3: fill slots for surviving positions, in the same
        // walk-major order the materialized builder replays `kept`.
        let mut slots = vec![PAD; total_ctx * c];
        let mut cursor = offsets[..n].to_vec();
        let mut bit = 0usize;
        walker.stream_blocks(block_size, DEPTH, |_, block| {
            for walk in &block {
                for (pos, &center) in walk.iter().enumerate() {
                    let keep = keep_bits[bit / 64] >> (bit % 64) & 1 == 1;
                    bit += 1;
                    if !keep {
                        continue;
                    }
                    let row = cursor[center as usize];
                    cursor[center as usize] += 1;
                    let dst = &mut slots[row * c..(row + 1) * c];
                    for (k, slot) in dst.iter_mut().enumerate() {
                        let rel = pos as isize + k as isize - half as isize;
                        if rel >= 0 && (rel as usize) < walk.len() {
                            *slot = walk[rel as usize];
                        }
                    }
                }
            }
        });

        if obs.is_enabled() {
            obs.add("walks/count", walk_count);
            obs.add("walks/steps", total);
            obs.add("contexts/kept", total_ctx as u64);
            obs.add("contexts/subsample_dropped", total - total_ctx as u64);
        }
        Self { c, n, offsets, slots }
    }

    /// Window size `c`.
    pub fn context_size(&self) -> usize {
        self.c
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Total number of contexts across all nodes.
    pub fn num_contexts(&self) -> usize {
        self.offsets[self.n]
    }

    /// `|context(v)|` — the number of contexts centered at `v`.
    pub fn count(&self, v: NodeId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// All per-node context counts.
    pub fn counts(&self) -> Vec<usize> {
        (0..self.n).map(|v| self.count(v as NodeId)).collect()
    }

    /// `k_p = max_v |context(v)|` (§3.3.1's latent neighborhood size).
    pub fn max_count(&self) -> usize {
        (0..self.n).map(|v| self.count(v as NodeId)).max().unwrap_or(0)
    }

    /// Global context-row range of node `v`: in any matrix laid out with one
    /// row per context in center-node order (such as `coane-core`'s
    /// epoch-persistent context-row cache), `v`'s contexts occupy exactly
    /// these row indices.
    pub fn row_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }

    /// Iterator over the `c`-slot windows of node `v`.
    pub fn contexts_of(&self, v: NodeId) -> impl Iterator<Item = &[NodeId]> {
        let (s, e) = (self.offsets[v as usize], self.offsets[v as usize + 1]);
        self.slots[s * self.c..e * self.c].chunks_exact(self.c)
    }

    /// Flat slot buffer of node `v`'s contexts (`count(v) * c` entries).
    pub fn slots_of(&self, v: NodeId) -> &[NodeId] {
        let (s, e) = (self.offsets[v as usize], self.offsets[v as usize + 1]);
        &self.slots[s * self.c..e * self.c]
    }

    /// Distinct non-PAD nodes appearing in `v`'s contexts (sorted), i.e. the
    /// membership test set for the contextual negative sampler.
    pub fn members_of(&self, v: NodeId) -> Vec<NodeId> {
        let mut m: Vec<NodeId> = self.slots_of(v).iter().copied().filter(|&x| x != PAD).collect();
        m.sort_unstable();
        m.dedup();
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_subsample(c: usize) -> ContextsConfig {
        ContextsConfig { context_size: c, subsample_t: f64::INFINITY, seed: 0 }
    }

    #[test]
    fn windows_padded_at_boundaries() {
        let walks = vec![vec![10, 11, 12]];
        let cs = ContextSet::build(&walks, 13, &no_subsample(3));
        assert_eq!(cs.num_contexts(), 3);
        let w10: Vec<&[NodeId]> = cs.contexts_of(10).collect();
        assert_eq!(w10, vec![&[PAD, 10, 11][..]]);
        let w11: Vec<&[NodeId]> = cs.contexts_of(11).collect();
        assert_eq!(w11, vec![&[10, 11, 12][..]]);
        let w12: Vec<&[NodeId]> = cs.contexts_of(12).collect();
        assert_eq!(w12, vec![&[11, 12, PAD][..]]);
    }

    #[test]
    fn center_occupies_midst() {
        let walks = vec![vec![0, 1, 2, 3, 4]];
        let cs = ContextSet::build(&walks, 5, &no_subsample(5));
        for v in 0..5u32 {
            for w in cs.contexts_of(v) {
                assert_eq!(w[2], v, "center not at midst of {w:?}");
            }
        }
    }

    #[test]
    fn counts_group_by_center() {
        // node 1 appears twice → two contexts
        let walks = vec![vec![0, 1, 1]];
        let cs = ContextSet::build(&walks, 2, &no_subsample(3));
        assert_eq!(cs.count(0), 1);
        assert_eq!(cs.count(1), 2);
        assert_eq!(cs.max_count(), 2);
        assert_eq!(cs.counts(), vec![1, 2]);
        assert_eq!(cs.row_range(0), 0..1);
        assert_eq!(cs.row_range(1), 1..3);
    }

    #[test]
    fn aggressive_subsampling_keeps_walk_starts() {
        // t = 0 → p_discard = 1 for every node; only position-0 contexts
        // survive, one per walk.
        let walks = vec![vec![0, 1, 2, 0, 1], vec![1, 0, 2]];
        let cfg = ContextsConfig { context_size: 3, subsample_t: 0.0, seed: 1 };
        let cs = ContextSet::build(&walks, 3, &cfg);
        assert_eq!(cs.num_contexts(), 2);
        assert_eq!(cs.count(0), 1);
        assert_eq!(cs.count(1), 1);
        assert_eq!(cs.count(2), 0);
    }

    #[test]
    fn members_deduplicated_sorted() {
        let walks = vec![vec![3, 1, 3, 2]];
        let cs = ContextSet::build(&walks, 4, &no_subsample(5));
        let m = cs.members_of(1);
        assert_eq!(m, vec![1, 2, 3]);
    }

    #[test]
    fn context_size_one_is_just_centers() {
        let walks = vec![vec![0, 1, 2]];
        let cs = ContextSet::build(&walks, 3, &no_subsample(1));
        for v in 0..3u32 {
            let w: Vec<&[NodeId]> = cs.contexts_of(v).collect();
            assert_eq!(w, vec![&[v][..]]);
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_context_rejected() {
        ContextSet::build(&[vec![0]], 1, &no_subsample(4));
    }

    #[test]
    fn streamed_build_matches_materialized() {
        use crate::walker::WalkConfig;
        use coane_graph::{GraphBuilder, NodeAttributes};
        // A ring so walks never dead-end and subsampling has signal.
        let n = 30usize;
        let mut b = GraphBuilder::new(n, n);
        for v in 0..n {
            b.add_edge(v as NodeId, ((v + 1) % n) as NodeId, 1.0);
        }
        let g = b.with_attrs(NodeAttributes::identity(n)).build();
        let walker = Walker::new(
            &g,
            WalkConfig { walks_per_node: 2, walk_length: 15, p: 1.0, q: 1.0, seed: 5 },
        );
        let walks = walker.generate_all(1);
        for subsample_t in [f64::INFINITY, 2e-2] {
            let cfg = ContextsConfig { context_size: 5, subsample_t, seed: 11 };
            let reference = ContextSet::build(&walks, n, &cfg);
            for block_size in [1usize, 4, 60, 1000] {
                let streamed = ContextSet::build_streamed(&walker, n, block_size, &cfg);
                assert_eq!(streamed.offsets, reference.offsets, "t={subsample_t} b={block_size}");
                assert_eq!(streamed.slots, reference.slots, "t={subsample_t} b={block_size}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let walks = vec![vec![0, 1, 2, 1, 0, 2, 1]; 4];
        let cfg = ContextsConfig { context_size: 3, subsample_t: 0.05, seed: 9 };
        let a = ContextSet::build(&walks, 3, &cfg);
        let b = ContextSet::build(&walks, 3, &cfg);
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.offsets, b.offsets);
    }
}
