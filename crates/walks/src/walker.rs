//! Random-walk generation.
//!
//! CoANE samples, for each start node, `r` walks of length `l`; at each step
//! the next node is drawn with probability `p(v_j) = E_ij / Σ_j E_ij` (§3.1).
//! For the node2vec baseline the biased second-order walk of Grover &
//! Leskovec (2016) with return parameter `p` and in-out parameter `q` is also
//! provided. Walks are generated in parallel with deterministic per-walk
//! seeds, so results are reproducible regardless of thread scheduling.

use coane_graph::{AttributedGraph, NodeId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One random-walk node sequence. A walk from an isolated node contains just
/// the start; a walk may be shorter than `l` only when it hits a dead end —
/// a node with no outgoing edges, or whose outgoing weights sum to zero or
/// a non-finite value (degenerate inputs that would otherwise make the
/// transition distribution undefined).
pub type Walk = Vec<NodeId>;

/// Walk-generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct WalkConfig {
    /// Walks per start node (`r`). The paper uses r = 1 for CoANE and r = 10
    /// for the random-walk baselines.
    pub walks_per_node: usize,
    /// Walk length (`l`); the paper uses 80.
    pub walk_length: usize,
    /// node2vec return parameter; `1.0` recovers the plain weighted walk.
    pub p: f32,
    /// node2vec in-out parameter; `1.0` recovers the plain weighted walk.
    pub q: f32,
    /// Master seed for the deterministic per-walk RNGs.
    pub seed: u64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self { walks_per_node: 1, walk_length: 80, p: 1.0, q: 1.0, seed: 42 }
    }
}

/// Generates random walks over an [`AttributedGraph`].
pub struct Walker<'g> {
    graph: &'g AttributedGraph,
    config: WalkConfig,
}

impl<'g> Walker<'g> {
    /// New walker for `graph` with `config`.
    pub fn new(graph: &'g AttributedGraph, config: WalkConfig) -> Self {
        assert!(config.walks_per_node >= 1, "need at least one walk per node");
        assert!(config.walk_length >= 1, "walks must have positive length");
        assert!(config.p > 0.0 && config.q > 0.0, "node2vec parameters must be positive");
        Self { graph, config }
    }

    /// The walk configuration.
    pub fn config(&self) -> &WalkConfig {
        &self.config
    }

    /// Generates all `r·n` walks, ordered by `(repeat, start node)`.
    /// Uses up to `threads` worker threads (1 = sequential); output is
    /// identical for any thread count because each walk derives its own RNG
    /// from `(seed, repeat, start)`.
    pub fn generate_all(&self, threads: usize) -> Vec<Walk> {
        self.generate_all_obs(threads, &coane_obs::Obs::disabled())
    }

    /// [`Walker::generate_all`] with phase telemetry: the generation runs
    /// under a `walks` timing scope and records walk/step counters.
    /// Telemetry is observation-only — the walks are bit-identical for any
    /// `obs` state.
    pub fn generate_all_obs(&self, threads: usize, obs: &coane_obs::Obs) -> Vec<Walk> {
        let _scope = obs.scope("walks");
        let n = self.graph.num_nodes();
        let r = self.config.walks_per_node;
        let total = n * r;
        let mut walks: Vec<Walk> = vec![Vec::new(); total];
        coane_nn::pool::parallel_chunks_with(&mut walks, 64, threads, |start, slab| {
            for (off, w) in slab.iter_mut().enumerate() {
                *w = self.walk_indexed(start + off, n);
            }
        });
        if obs.is_enabled() {
            obs.add("walks/count", walks.len() as u64);
            obs.add("walks/steps", walks.iter().map(|w| w.len() as u64).sum());
        }
        walks
    }

    /// Total number of walks this walker generates (`r·n`).
    pub fn num_walks(&self) -> usize {
        self.graph.num_nodes() * self.config.walks_per_node
    }

    /// Number of fixed-size blocks the walk sequence splits into.
    pub fn num_blocks(&self, block_size: usize) -> usize {
        assert!(block_size >= 1, "block size must be positive");
        self.num_walks().div_ceil(block_size)
    }

    /// Generates block `b` of the global walk sequence: walks
    /// `b·block_size .. min((b+1)·block_size, r·n)` in [`Walker::generate_all`]
    /// order. Because every walk derives its RNG purely from its global
    /// index, a block can be (re)generated independently of all others;
    /// concatenating all blocks reproduces `generate_all` byte for byte.
    pub fn walks_block(&self, b: usize, block_size: usize) -> Vec<Walk> {
        let n = self.graph.num_nodes();
        let total = self.num_walks();
        let start = (b * block_size).min(total);
        let end = ((b + 1) * block_size).min(total);
        (start..end).map(|k| self.walk_indexed(k, n)).collect()
    }

    /// Streams walk blocks through a bounded channel: blocks are produced
    /// up to `depth` ahead on a pool worker while `consume(block_idx, walks)`
    /// runs on the calling thread, strictly in block order. With `depth = 0`
    /// (or a single thread) blocks are generated inline — either way the
    /// consumer sees exactly the [`Walker::generate_all`] sequence, split at
    /// `block_size` boundaries, so streaming is a pure memory/throughput
    /// knob. Peak walk storage is `(depth + 2)` blocks instead of `r·n`.
    pub fn stream_blocks(
        &self,
        block_size: usize,
        depth: usize,
        consume: impl FnMut(usize, Vec<Walk>),
    ) {
        let blocks = self.num_blocks(block_size);
        coane_nn::pool::prefetch(blocks, depth, |b| self.walks_block(b, block_size), consume);
    }

    fn walk_indexed(&self, k: usize, n: usize) -> Walk {
        let repeat = k / n;
        let start = (k % n) as NodeId;
        let mut rng = self.walk_rng(repeat, start);
        self.walk_from(start, &mut rng)
    }

    fn walk_rng(&self, repeat: usize, start: NodeId) -> ChaCha8Rng {
        let s = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((repeat as u64) << 32)
            .wrapping_add(start as u64 + 1);
        ChaCha8Rng::seed_from_u64(s)
    }

    /// Samples a single walk starting at `start`.
    pub fn walk_from<R: Rng>(&self, start: NodeId, rng: &mut R) -> Walk {
        let l = self.config.walk_length;
        let mut walk = Vec::with_capacity(l);
        walk.push(start);
        let unbiased = self.config.p == 1.0 && self.config.q == 1.0;
        while walk.len() < l {
            let cur = *walk.last().unwrap();
            let next = if unbiased || walk.len() < 2 {
                self.step_weighted(cur, rng)
            } else {
                self.step_node2vec(walk[walk.len() - 2], cur, rng)
            };
            match next {
                Some(u) => walk.push(u),
                None => break, // dead end: isolated node or degenerate weights
            }
        }
        walk
    }

    /// First-order weighted step: `p(next = u) ∝ E_{cur,u}`. Returns `None`
    /// when `cur` is a dead end — no neighbours, or a total outgoing weight
    /// that is zero or non-finite (sampling would be undefined).
    fn step_weighted<R: Rng>(&self, cur: NodeId, rng: &mut R) -> Option<NodeId> {
        let nbrs = self.graph.neighbors_of(cur);
        let wts = self.graph.weights_of(cur);
        let total: f32 = wts.iter().sum();
        if nbrs.is_empty() || !total.is_finite() || total <= 0.0 {
            return None;
        }
        let mut x = rng.gen_range(0.0..total);
        for (&u, &w) in nbrs.iter().zip(wts) {
            if x < w {
                return Some(u);
            }
            x -= w;
        }
        nbrs.last().copied()
    }

    /// node2vec second-order step with unnormalized weights
    /// `w/p` (return), `w` (distance-1 from prev), `w/q` (distance-2).
    /// Returns `None` on a dead end, like [`Walker::step_weighted`].
    fn step_node2vec<R: Rng>(&self, prev: NodeId, cur: NodeId, rng: &mut R) -> Option<NodeId> {
        let nbrs = self.graph.neighbors_of(cur);
        let wts = self.graph.weights_of(cur);
        let (p, q) = (self.config.p, self.config.q);
        let mut cumulative = Vec::with_capacity(nbrs.len());
        let mut total = 0.0f32;
        for (&u, &w) in nbrs.iter().zip(wts) {
            let bias = if u == prev {
                w / p
            } else if self.graph.has_edge(u, prev) {
                w
            } else {
                w / q
            };
            total += bias;
            cumulative.push(total);
        }
        if nbrs.is_empty() || !total.is_finite() || total <= 0.0 {
            return None;
        }
        let x = rng.gen_range(0.0..total);
        let idx = cumulative.partition_point(|&c| c <= x);
        nbrs.get(idx.min(nbrs.len() - 1)).copied()
    }
}

/// Frequency of each node's appearance across `walks` (the `f(v)` of the
/// subsampling rule, as raw counts).
pub fn node_frequencies(walks: &[Walk], n: usize) -> Vec<u64> {
    let mut freq = vec![0u64; n];
    for w in walks {
        for &v in w {
            freq[v as usize] += 1;
        }
    }
    freq
}

#[cfg(test)]
mod tests {
    use super::*;
    use coane_graph::{GraphBuilder, NodeAttributes};

    fn star(n: usize) -> AttributedGraph {
        // node 0 is the hub
        let mut b = GraphBuilder::new(n, n);
        for i in 1..n {
            b.add_edge(0, i as NodeId, 1.0);
        }
        b.with_attrs(NodeAttributes::identity(n)).build()
    }

    fn weighted_pair() -> AttributedGraph {
        let mut b = GraphBuilder::new(3, 3);
        b.add_edge(0, 1, 9.0);
        b.add_edge(0, 2, 1.0);
        b.with_attrs(NodeAttributes::identity(3)).build()
    }

    #[test]
    fn walks_respect_edges() {
        let g = star(8);
        let walker = Walker::new(&g, WalkConfig { walks_per_node: 2, ..Default::default() });
        for w in walker.generate_all(1) {
            assert_eq!(w.len(), 80);
            for pair in w.windows(2) {
                assert!(g.has_edge(pair[0], pair[1]), "invalid step {pair:?}");
            }
        }
    }

    #[test]
    fn walk_counts_and_order() {
        let g = star(5);
        let walker = Walker::new(&g, WalkConfig { walks_per_node: 3, ..Default::default() });
        let walks = walker.generate_all(2);
        assert_eq!(walks.len(), 15);
        for (k, w) in walks.iter().enumerate() {
            assert_eq!(w[0], (k % 5) as NodeId, "walk {k} wrong start");
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let g = star(20);
        let walker = Walker::new(&g, WalkConfig { walks_per_node: 2, ..Default::default() });
        assert_eq!(walker.generate_all(1), walker.generate_all(4));
    }

    #[test]
    fn weighted_steps_follow_edge_weights() {
        let g = weighted_pair();
        let walker = Walker::new(&g, WalkConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut to1 = 0usize;
        for _ in 0..5000 {
            if walker.step_weighted(0, &mut rng) == Some(1) {
                to1 += 1;
            }
        }
        let frac = to1 as f64 / 5000.0;
        assert!((frac - 0.9).abs() < 0.03, "weighted fraction {frac}");
    }

    #[test]
    fn isolated_node_walk_is_singleton() {
        let mut b = GraphBuilder::new(3, 3);
        b.add_edge(0, 1, 1.0);
        let g = b.with_attrs(NodeAttributes::identity(3)).build();
        let walker = Walker::new(&g, WalkConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(walker.walk_from(2, &mut rng), vec![2]);
    }

    #[test]
    fn node2vec_low_p_returns_often() {
        // On a path graph 0-1-2, from cur=1 with prev=0: neighbors {0, 2};
        // 0 gets weight 1/p, 2 gets 1/q (not adjacent to 0). Tiny p → mostly
        // return to 0.
        let mut b = GraphBuilder::new(3, 3);
        b.add_edges(&[(0, 1), (1, 2)]);
        let g = b.with_attrs(NodeAttributes::identity(3)).build();
        let walker = Walker::new(&g, WalkConfig { p: 0.05, q: 1.0, ..Default::default() });
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut returns = 0usize;
        for _ in 0..2000 {
            if walker.step_node2vec(0, 1, &mut rng) == Some(0) {
                returns += 1;
            }
        }
        let frac = returns as f64 / 2000.0;
        assert!(frac > 0.9, "return fraction {frac}");
    }

    #[test]
    fn node2vec_high_q_stays_local() {
        // Triangle 0-1-2 plus pendant 3 on node 1. From cur=1, prev=0:
        // candidates 0 (1/p), 2 (adjacent to 0 → weight 1), 3 (1/q).
        // Huge q → node 3 almost never chosen.
        let mut b = GraphBuilder::new(4, 4);
        b.add_edges(&[(0, 1), (1, 2), (0, 2), (1, 3)]);
        let g = b.with_attrs(NodeAttributes::identity(4)).build();
        let walker = Walker::new(&g, WalkConfig { p: 1.0, q: 100.0, ..Default::default() });
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut explore = 0usize;
        for _ in 0..2000 {
            if walker.step_node2vec(0, 1, &mut rng) == Some(3) {
                explore += 1;
            }
        }
        assert!(explore < 40, "distant steps {explore}");
    }

    #[test]
    fn empty_graph_yields_no_walks() {
        let g = GraphBuilder::new(0, 0).with_attrs(NodeAttributes::identity(0)).build();
        let walker = Walker::new(&g, WalkConfig::default());
        assert!(walker.generate_all(1).is_empty());
        assert!(walker.generate_all(4).is_empty());
    }

    #[test]
    fn single_node_graph_walks_are_singletons() {
        let g = GraphBuilder::new(1, 1).with_attrs(NodeAttributes::identity(1)).build();
        let walker = Walker::new(&g, WalkConfig { walks_per_node: 3, ..Default::default() });
        assert_eq!(walker.generate_all(1), vec![vec![0]; 3]);
    }

    #[test]
    fn all_isolated_nodes_walk_without_panicking() {
        let g = GraphBuilder::new(5, 5).with_attrs(NodeAttributes::identity(5)).build();
        let walker = Walker::new(&g, WalkConfig::default());
        let walks = walker.generate_all(2);
        assert_eq!(walks.len(), 5);
        for (i, w) in walks.iter().enumerate() {
            assert_eq!(w, &vec![i as NodeId]);
        }
    }

    #[test]
    fn overflowing_weight_sum_ends_walk_instead_of_panicking() {
        // Every edge weight is individually valid (finite, positive) yet
        // their sum overflows to +inf — per-edge validation cannot catch
        // this, and the old sampler handed the non-finite total straight to
        // gen_range. The hardened step treats it as a dead end.
        let mut b = GraphBuilder::new(3, 3);
        b.add_edge(0, 1, f32::MAX);
        b.add_edge(0, 2, f32::MAX);
        let g = b.with_attrs(NodeAttributes::identity(3)).build();
        let walker = Walker::new(&g, WalkConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        assert_eq!(walker.step_weighted(0, &mut rng), None);
        assert_eq!(walker.walk_from(0, &mut rng), vec![0]);
        // generate_all completes over the degenerate graph too.
        for w in walker.generate_all(2) {
            assert!(!w.is_empty());
        }
    }

    #[test]
    fn node2vec_overflowing_bias_total_is_dead_end() {
        // Path 0-1-2 with huge weights: from cur=1, prev=0, the in-out bias
        // w/q with q=0.5 doubles f32::MAX into +inf.
        let mut b = GraphBuilder::new(3, 3);
        b.add_edge(0, 1, f32::MAX);
        b.add_edge(1, 2, f32::MAX);
        let g = b.with_attrs(NodeAttributes::identity(3)).build();
        let walker = Walker::new(&g, WalkConfig { p: 2.0, q: 0.5, ..Default::default() });
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        assert_eq!(walker.step_node2vec(0, 1, &mut rng), None);
    }

    #[test]
    fn frequencies_count_appearances() {
        let walks = vec![vec![0, 1, 0], vec![2]];
        assert_eq!(node_frequencies(&walks, 3), vec![2, 1, 1]);
    }

    #[test]
    fn streamed_blocks_concatenate_to_generate_all() {
        let g = star(23);
        let walker = Walker::new(&g, WalkConfig { walks_per_node: 3, ..Default::default() });
        let all = walker.generate_all(1);
        assert_eq!(walker.num_walks(), 69);
        for block_size in [1usize, 7, 64, 1000] {
            assert_eq!(walker.num_blocks(block_size), 69usize.div_ceil(block_size));
            let mut got: Vec<Walk> = Vec::new();
            let mut next = 0usize;
            walker.stream_blocks(block_size, 2, |b, block| {
                assert_eq!(b, next, "blocks out of order");
                next += 1;
                got.extend(block);
            });
            assert_eq!(got, all, "block_size={block_size}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g = star(10);
        let mk = || Walker::new(&g, WalkConfig { seed: 99, ..Default::default() }).generate_all(3);
        assert_eq!(mk(), mk());
    }
}
