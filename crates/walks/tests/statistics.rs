//! Statistical correctness of the walk engine: long-run visit frequencies
//! must match random-walk theory.

use coane_datasets::generator::planted_partition;
use coane_graph::{GraphBuilder, NodeAttributes, NodeId};
use coane_walks::{walker::node_frequencies, WalkConfig, Walker};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// On a connected unweighted graph, the stationary distribution of a simple
/// random walk is proportional to node degree. Long walks from every start
/// node should approximate it.
#[test]
fn visit_frequencies_approach_degree_distribution() {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let g = planted_partition(80, 2, 0.3, 0.1, 16, &mut rng);
    let walker = Walker::new(
        &g,
        WalkConfig { walks_per_node: 8, walk_length: 200, p: 1.0, q: 1.0, seed: 3 },
    );
    let walks = walker.generate_all(4);
    let freq = node_frequencies(&walks, g.num_nodes());
    let total: u64 = freq.iter().sum();
    let total_degree: usize = (0..g.num_nodes() as NodeId).map(|v| g.degree(v)).sum();
    // L1 distance between empirical visit distribution and degree distribution
    let mut l1 = 0.0f64;
    for (v, &f) in freq.iter().enumerate() {
        let emp = f as f64 / total as f64;
        let exp = g.degree(v as NodeId) as f64 / total_degree as f64;
        l1 += (emp - exp).abs();
    }
    assert!(l1 < 0.2, "L1 distance to stationary distribution: {l1}");
}

/// A weighted edge should be traversed proportionally to its weight.
#[test]
fn weighted_edges_visited_proportionally() {
    // star: hub 0 with weights 1, 2, 4 to leaves 1, 2, 3
    let mut b = GraphBuilder::new(4, 4);
    b.add_edge(0, 1, 1.0);
    b.add_edge(0, 2, 2.0);
    b.add_edge(0, 3, 4.0);
    let g = b.with_attrs(NodeAttributes::identity(4)).build();
    let walker = Walker::new(
        &g,
        WalkConfig { walks_per_node: 1, walk_length: 40_000, p: 1.0, q: 1.0, seed: 5 },
    );
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let walk = walker.walk_from(0, &mut rng);
    let mut hub_exits = [0usize; 4];
    for w in walk.windows(2) {
        if w[0] == 0 {
            hub_exits[w[1] as usize] += 1;
        }
    }
    let total: usize = hub_exits.iter().sum();
    let f1 = hub_exits[1] as f64 / total as f64;
    let f2 = hub_exits[2] as f64 / total as f64;
    let f3 = hub_exits[3] as f64 / total as f64;
    assert!((f1 - 1.0 / 7.0).abs() < 0.02, "weight-1 leaf freq {f1}");
    assert!((f2 - 2.0 / 7.0).abs() < 0.02, "weight-2 leaf freq {f2}");
    assert!((f3 - 4.0 / 7.0).abs() < 0.02, "weight-4 leaf freq {f3}");
}

/// Subsampling must preferentially discard contexts of frequent nodes: after
/// subsampling, the visit distribution is flatter than before.
#[test]
fn subsampling_flattens_frequency_distribution() {
    use coane_walks::{ContextSet, ContextsConfig};
    // hub-heavy graph: node 0 connected to everyone, sparse elsewhere
    let n = 40usize;
    let mut b = GraphBuilder::new(n, n);
    for v in 1..n as NodeId {
        b.add_edge(0, v, 1.0);
    }
    for v in 1..(n as NodeId - 1) {
        b.add_edge(v, v + 1, 1.0);
    }
    let g = b.with_attrs(NodeAttributes::identity(n)).build();
    let walker = Walker::new(
        &g,
        WalkConfig { walks_per_node: 3, walk_length: 60, p: 1.0, q: 1.0, seed: 11 },
    );
    let walks = walker.generate_all(2);

    let count_share = |cs: &ContextSet| -> f64 {
        let total: usize = cs.counts().iter().sum();
        cs.count(0) as f64 / total as f64
    };
    let raw = ContextSet::build(
        &walks,
        n,
        &ContextsConfig { context_size: 3, subsample_t: f64::INFINITY, seed: 1 },
    );
    let subsampled = ContextSet::build(
        &walks,
        n,
        &ContextsConfig { context_size: 3, subsample_t: 1e-3, seed: 1 },
    );
    let raw_share = count_share(&raw);
    let sub_share = count_share(&subsampled);
    assert!(
        sub_share < raw_share,
        "hub context share did not shrink: raw {raw_share} vs subsampled {sub_share}"
    );
    // every node still has at least one context (walk starts are kept)
    for v in 0..n as NodeId {
        assert!(subsampled.count(v) >= 1, "node {v} lost all contexts");
    }
}

/// The contextual noise distribution must track context counts exactly.
#[test]
fn contextual_distribution_matches_counts() {
    use coane_walks::{ContextSet, ContextsConfig, ContextualNegativeSampler};
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let g = planted_partition(50, 2, 0.3, 0.05, 16, &mut rng);
    let walker = Walker::new(&g, WalkConfig { walk_length: 30, ..Default::default() });
    let walks = walker.generate_all(2);
    let cs = ContextSet::build(
        &walks,
        g.num_nodes(),
        &ContextsConfig { context_size: 5, subsample_t: f64::INFINITY, seed: 2 },
    );
    let sampler = ContextualNegativeSampler::new(&cs);
    let counts = cs.counts();
    let total: usize = counts.iter().sum();
    for v in (0..g.num_nodes() as NodeId).step_by(7) {
        let want = counts[v as usize] as f64 / total as f64;
        let got = sampler.probability(v);
        assert!((got - want).abs() < 1e-9, "node {v}: {got} vs {want}");
    }
}
