//! Statistical correctness of the walk engine: long-run visit frequencies
//! must match random-walk theory, and every sampler must pass a chi-square
//! goodness-of-fit test against its claimed distribution.
//!
//! All tests draw with fixed seeds, so they are deterministic; the chi-square
//! critical values still use a p ≈ 0.001 significance level so the committed
//! seeds sit far from the rejection boundary.

use coane_datasets::generator::planted_partition;
use coane_graph::{GraphBuilder, NodeAttributes, NodeId};
use coane_walks::{walker::node_frequencies, AliasTable, WalkConfig, Walker};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Pearson's chi-square statistic for observed counts vs expected
/// probabilities (which must sum to ~1). Panics if any expected cell count
/// is below 5 — the classical validity threshold for the asymptotic test.
fn chi_square_stat(observed: &[u64], expected_probs: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected_probs.len());
    let total: u64 = observed.iter().sum();
    let mut stat = 0.0f64;
    for (&o, &p) in observed.iter().zip(expected_probs) {
        let e = p * total as f64;
        assert!(e >= 5.0, "expected cell count {e} < 5; coarsen the bins");
        stat += (o as f64 - e) * (o as f64 - e) / e;
    }
    stat
}

/// Approximate upper critical value of the chi-square distribution via the
/// Wilson–Hilferty cube-root normal approximation:
/// `χ²_q(k) ≈ k·(1 − 2/(9k) + z_q·√(2/(9k)))³`.
fn chi_square_critical(df: usize, z: f64) -> f64 {
    let k = df as f64;
    let t = 1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt();
    k * t * t * t
}

/// z-quantile for p ≈ 0.001 (one-sided), i.e. a 99.9% acceptance region.
const Z_999: f64 = 3.0902;

/// Asserts a chi-square GOF test passes at p ≈ 0.001.
fn assert_gof(name: &str, observed: &[u64], expected_probs: &[f64]) {
    let stat = chi_square_stat(observed, expected_probs);
    let crit = chi_square_critical(observed.len() - 1, Z_999);
    assert!(
        stat < crit,
        "{name}: chi-square {stat:.2} exceeds critical {crit:.2} (df {})",
        observed.len() - 1
    );
}

/// On a connected unweighted graph, the stationary distribution of a simple
/// random walk is proportional to node degree. Long walks from every start
/// node should approximate it.
#[test]
fn visit_frequencies_approach_degree_distribution() {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let g = planted_partition(80, 2, 0.3, 0.1, 16, &mut rng);
    let walker = Walker::new(
        &g,
        WalkConfig { walks_per_node: 8, walk_length: 200, p: 1.0, q: 1.0, seed: 3 },
    );
    let walks = walker.generate_all(4);
    let freq = node_frequencies(&walks, g.num_nodes());
    let total: u64 = freq.iter().sum();
    let total_degree: usize = (0..g.num_nodes() as NodeId).map(|v| g.degree(v)).sum();
    // L1 distance between empirical visit distribution and degree distribution
    let mut l1 = 0.0f64;
    for (v, &f) in freq.iter().enumerate() {
        let emp = f as f64 / total as f64;
        let exp = g.degree(v as NodeId) as f64 / total_degree as f64;
        l1 += (emp - exp).abs();
    }
    assert!(l1 < 0.2, "L1 distance to stationary distribution: {l1}");
}

/// A weighted edge should be traversed proportionally to its weight.
#[test]
fn weighted_edges_visited_proportionally() {
    // star: hub 0 with weights 1, 2, 4 to leaves 1, 2, 3
    let mut b = GraphBuilder::new(4, 4);
    b.add_edge(0, 1, 1.0);
    b.add_edge(0, 2, 2.0);
    b.add_edge(0, 3, 4.0);
    let g = b.with_attrs(NodeAttributes::identity(4)).build();
    let walker = Walker::new(
        &g,
        WalkConfig { walks_per_node: 1, walk_length: 40_000, p: 1.0, q: 1.0, seed: 5 },
    );
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let walk = walker.walk_from(0, &mut rng);
    let mut hub_exits = [0usize; 4];
    for w in walk.windows(2) {
        if w[0] == 0 {
            hub_exits[w[1] as usize] += 1;
        }
    }
    let total: usize = hub_exits.iter().sum();
    let f1 = hub_exits[1] as f64 / total as f64;
    let f2 = hub_exits[2] as f64 / total as f64;
    let f3 = hub_exits[3] as f64 / total as f64;
    assert!((f1 - 1.0 / 7.0).abs() < 0.02, "weight-1 leaf freq {f1}");
    assert!((f2 - 2.0 / 7.0).abs() < 0.02, "weight-2 leaf freq {f2}");
    assert!((f3 - 4.0 / 7.0).abs() < 0.02, "weight-4 leaf freq {f3}");
}

/// Subsampling must preferentially discard contexts of frequent nodes: after
/// subsampling, the visit distribution is flatter than before.
#[test]
fn subsampling_flattens_frequency_distribution() {
    use coane_walks::{ContextSet, ContextsConfig};
    // hub-heavy graph: node 0 connected to everyone, sparse elsewhere
    let n = 40usize;
    let mut b = GraphBuilder::new(n, n);
    for v in 1..n as NodeId {
        b.add_edge(0, v, 1.0);
    }
    for v in 1..(n as NodeId - 1) {
        b.add_edge(v, v + 1, 1.0);
    }
    let g = b.with_attrs(NodeAttributes::identity(n)).build();
    let walker = Walker::new(
        &g,
        WalkConfig { walks_per_node: 3, walk_length: 60, p: 1.0, q: 1.0, seed: 11 },
    );
    let walks = walker.generate_all(2);

    let count_share = |cs: &ContextSet| -> f64 {
        let total: usize = cs.counts().iter().sum();
        cs.count(0) as f64 / total as f64
    };
    let raw = ContextSet::build(
        &walks,
        n,
        &ContextsConfig { context_size: 3, subsample_t: f64::INFINITY, seed: 1 },
    );
    let subsampled = ContextSet::build(
        &walks,
        n,
        &ContextsConfig { context_size: 3, subsample_t: 1e-3, seed: 1 },
    );
    let raw_share = count_share(&raw);
    let sub_share = count_share(&subsampled);
    assert!(
        sub_share < raw_share,
        "hub context share did not shrink: raw {raw_share} vs subsampled {sub_share}"
    );
    // every node still has at least one context (walk starts are kept)
    for v in 0..n as NodeId {
        assert!(subsampled.count(v) >= 1, "node {v} lost all contexts");
    }
}

/// The alias table must reproduce an arbitrary weighted distribution —
/// chi-square GOF over 200k draws.
#[test]
fn alias_table_passes_chi_square_gof() {
    let weights = [0.5f64, 1.0, 2.5, 3.0, 7.0, 0.2, 5.8];
    let total: f64 = weights.iter().sum();
    let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
    let table = AliasTable::new(&weights);
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let mut observed = vec![0u64; weights.len()];
    for _ in 0..200_000 {
        observed[table.sample(&mut rng) as usize] += 1;
    }
    assert_gof("alias table", &observed, &probs);
}

/// Walk transitions out of a weighted hub must follow the edge-weight
/// distribution — the chi-square version of the proportionality test above.
#[test]
fn edge_weight_transitions_pass_chi_square() {
    let weights = [1.0f32, 2.0, 3.0, 5.0, 8.0, 13.0];
    let n = weights.len() + 1;
    let mut b = GraphBuilder::new(n, n);
    for (leaf, &w) in weights.iter().enumerate() {
        b.add_edge(0, (leaf + 1) as NodeId, w);
    }
    let g = b.with_attrs(NodeAttributes::identity(n)).build();
    let walker = Walker::new(
        &g,
        WalkConfig { walks_per_node: 1, walk_length: 120_000, p: 1.0, q: 1.0, seed: 23 },
    );
    let mut rng = ChaCha8Rng::seed_from_u64(29);
    let walk = walker.walk_from(0, &mut rng);
    let mut observed = vec![0u64; weights.len()];
    for w in walk.windows(2) {
        if w[0] == 0 {
            observed[w[1] as usize - 1] += 1;
        }
    }
    let total: f32 = weights.iter().sum();
    let probs: Vec<f64> = weights.iter().map(|&w| (w / total) as f64).collect();
    assert_gof("hub exits", &observed, &probs);
}

/// The contextual negative sampler's draws must follow
/// `P_V(v) = |context(v)| / Σ_u |context(u)|` — chi-square GOF on the
/// offline pool.
#[test]
fn contextual_sampler_draws_pass_chi_square() {
    use coane_walks::{ContextSet, ContextsConfig, ContextualNegativeSampler};
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let g = planted_partition(40, 2, 0.3, 0.05, 8, &mut rng);
    let walker = Walker::new(
        &g,
        WalkConfig { walks_per_node: 2, walk_length: 40, p: 1.0, q: 1.0, seed: 37 },
    );
    let walks = walker.generate_all(2);
    let cs = ContextSet::build(
        &walks,
        g.num_nodes(),
        &ContextsConfig { context_size: 5, subsample_t: f64::INFINITY, seed: 3 },
    );
    let sampler = ContextualNegativeSampler::new(&cs);
    let counts = cs.counts();
    let total: usize = counts.iter().sum();
    let probs: Vec<f64> = counts.iter().map(|&c| c as f64 / total as f64).collect();

    let mut draw_rng = ChaCha8Rng::seed_from_u64(41);
    let pool = sampler.draw_pool(200_000, &mut draw_rng);
    let mut observed = vec![0u64; g.num_nodes()];
    for &v in &pool {
        observed[v as usize] += 1;
    }
    assert_gof("contextual sampler", &observed, &probs);
}

/// The word2vec-style smoothed noise distribution (unigram^0.75, used by the
/// SGNS baselines) must survive the alias construction intact.
#[test]
fn unigram_power_075_passes_chi_square() {
    let raw_counts = [40.0f64, 210.0, 3.0, 999.0, 77.0, 512.0, 128.0, 9.0];
    let smoothed: Vec<f64> = raw_counts.iter().map(|c| c.powf(0.75)).collect();
    let total: f64 = smoothed.iter().sum();
    let probs: Vec<f64> = smoothed.iter().map(|w| w / total).collect();
    let table = AliasTable::new(&smoothed);
    let mut rng = ChaCha8Rng::seed_from_u64(43);
    let mut observed = vec![0u64; smoothed.len()];
    for _ in 0..200_000 {
        observed[table.sample(&mut rng) as usize] += 1;
    }
    assert_gof("unigram^0.75", &observed, &probs);
}

/// Subsampling keeps a walk position of node `v` with probability
/// `min(1, √(t / f(v)))` (position 0 is always kept). The empirical keep
/// rate must match within binomial noise.
#[test]
fn subsampling_keep_rate_matches_theory() {
    use coane_walks::{ContextSet, ContextsConfig};
    // Hub graph: node 0 is visited roughly half the time, so its keep
    // probability under t = 1e-2 is far from both 0 and 1.
    let n = 30usize;
    let mut b = GraphBuilder::new(n, n);
    for v in 1..n as NodeId {
        b.add_edge(0, v, 1.0);
    }
    let g = b.with_attrs(NodeAttributes::identity(n)).build();
    let walker = Walker::new(
        &g,
        WalkConfig { walks_per_node: 40, walk_length: 60, p: 1.0, q: 1.0, seed: 47 },
    );
    let walks = walker.generate_all(2);
    let freq = node_frequencies(&walks, n);
    let total: u64 = freq.iter().sum();
    let t = 1e-2f64;

    let cs =
        ContextSet::build(&walks, n, &ContextsConfig { context_size: 3, subsample_t: t, seed: 53 });

    // Walk starts are exempt from subsampling; account for them exactly.
    let mut starts = vec![0u64; n];
    for walk in &walks {
        starts[walk[0] as usize] += 1;
    }
    for v in 0..n {
        let (f, s) = (freq[v], starts[v]);
        assert!(cs.count(v as NodeId) as u64 >= s, "node {v} lost an always-kept walk start");
        let eligible = f - s; // positions subject to the coin flip
        if eligible < 500 {
            continue; // too few trials for a tight empirical rate
        }
        let keep_p = (t / (f as f64 / total as f64)).sqrt().min(1.0);
        let kept = cs.count(v as NodeId) as u64 - s;
        let emp = kept as f64 / eligible as f64;
        // 4.4σ binomial tolerance (p ≈ 1e-5 two-sided per node).
        let tol = 4.4 * (keep_p * (1.0 - keep_p) / eligible as f64).sqrt();
        assert!(
            (emp - keep_p).abs() <= tol.max(1e-3),
            "node {v}: empirical keep rate {emp:.4} vs theoretical {keep_p:.4} (±{tol:.4})"
        );
    }

    // The hub must actually be down-sampled (keep probability < 1).
    let hub_keep = (t / (freq[0] as f64 / total as f64)).sqrt();
    assert!(hub_keep < 0.9, "test graph no longer exercises subsampling: {hub_keep}");
}

/// The contextual noise distribution must track context counts exactly.
#[test]
fn contextual_distribution_matches_counts() {
    use coane_walks::{ContextSet, ContextsConfig, ContextualNegativeSampler};
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let g = planted_partition(50, 2, 0.3, 0.05, 16, &mut rng);
    let walker = Walker::new(&g, WalkConfig { walk_length: 30, ..Default::default() });
    let walks = walker.generate_all(2);
    let cs = ContextSet::build(
        &walks,
        g.num_nodes(),
        &ContextsConfig { context_size: 5, subsample_t: f64::INFINITY, seed: 2 },
    );
    let sampler = ContextualNegativeSampler::new(&cs);
    let counts = cs.counts();
    let total: usize = counts.iter().sum();
    for v in (0..g.num_nodes() as NodeId).step_by(7) {
        let want = counts[v as usize] as f64 / total as f64;
        let got = sampler.probability(v);
        assert!((got - want).abs() < 1e-9, "node {v}: {got} vs {want}");
    }
}
