//! Thread-count invariance: every parallel stage — walk generation, the
//! blocked matmul kernels, and the full `Coane::fit` pipeline — must produce
//! bit-identical results whether it runs on 1 worker or several. This is the
//! contract that makes `CoaneConfig::threads` a pure performance knob, and
//! the same contract extends to the batch-prefetch depth
//! (`prefetch_batches`) and the no-grad inference chunk size
//! (`infer_batch_size`).

use coane::nn::{pool, Matrix};
use coane::prelude::*;
use coane::walks::{WalkConfig, Walker};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn test_graph(seed: u64) -> AttributedGraph {
    let cfg = SocialCircleConfig {
        num_nodes: 150,
        num_communities: 3,
        circles_per_community: 2,
        attr_dim: 80,
        num_edges: 500,
        mixing: 0.1,
        ..Default::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    social_circle_graph(&cfg, &mut rng).0
}

#[test]
fn fit_is_bit_identical_across_thread_counts() {
    let graph = test_graph(7);
    let config = |threads: usize| CoaneConfig {
        embed_dim: 16,
        epochs: 3,
        context_size: 3,
        walk_length: 20,
        batch_size: 40,
        decoder_hidden: (32, 32),
        threads,
        ..Default::default()
    };
    let z1 = Coane::new(config(1)).fit(&graph);
    let z4 = Coane::new(config(4)).fit(&graph);
    assert_eq!(z1.as_slice(), z4.as_slice(), "embeddings differ between threads=1 and threads=4");
}

#[test]
fn fit_is_bit_identical_with_prefetch_on_or_off() {
    let graph = test_graph(7);
    let config = |prefetch_batches: usize, threads: usize| CoaneConfig {
        embed_dim: 16,
        epochs: 3,
        context_size: 3,
        walk_length: 20,
        batch_size: 40,
        decoder_hidden: (32, 32),
        threads,
        prefetch_batches,
        ..Default::default()
    };
    // Inline assembly (depth 0) is the reference; any pipeline depth and any
    // thread count must reproduce it exactly.
    let z_inline = Coane::new(config(0, 1)).fit(&graph);
    for (depth, threads) in [(1, 2), (2, 2), (2, 4), (8, 3)] {
        let z = Coane::new(config(depth, threads)).fit(&graph);
        assert_eq!(
            z_inline.as_slice(),
            z.as_slice(),
            "embeddings differ with prefetch_batches={depth}, threads={threads}"
        );
    }
}

#[test]
fn fit_is_bit_identical_across_infer_batch_sizes() {
    let graph = test_graph(7);
    let config = |infer_batch_size: usize| CoaneConfig {
        embed_dim: 16,
        epochs: 2,
        context_size: 3,
        walk_length: 20,
        batch_size: 40,
        decoder_hidden: (32, 32),
        threads: 2,
        infer_batch_size,
        ..Default::default()
    };
    let base = Coane::new(config(256)).fit(&graph);
    for ibs in [1, 7, 64, 10_000] {
        let z = Coane::new(config(ibs)).fit(&graph);
        assert_eq!(base.as_slice(), z.as_slice(), "embeddings differ at infer_batch_size={ibs}");
    }
}

#[test]
fn resume_with_prefetch_is_bit_identical() {
    let graph = test_graph(5);
    let config = |epochs: usize, prefetch_batches: usize| CoaneConfig {
        embed_dim: 16,
        epochs,
        context_size: 3,
        walk_length: 20,
        batch_size: 40,
        decoder_hidden: (32, 32),
        threads: 2,
        prefetch_batches,
        ..Default::default()
    };
    let dir = std::env::temp_dir().join("coane_determinism_ckpt_prefetch");
    let _ = std::fs::remove_dir_all(&dir);
    // Interrupted run with a deep pipeline, resumed without one: the
    // prefetch depth is not part of the checkpoint fingerprint and must not
    // shift a bit of the trajectory.
    Coane::new(config(2, 4)).fit_resumable(&graph, &CheckpointConfig::new(&dir)).unwrap();
    let (z_resumed, stats) =
        Coane::new(config(4, 0)).fit_resumable(&graph, &CheckpointConfig::new(&dir)).unwrap();
    assert_eq!(stats.resumed_from_epoch, Some(2));
    let z_direct = Coane::new(config(4, 2)).fit(&graph);
    assert_eq!(z_resumed.as_slice(), z_direct.as_slice(), "resume with prefetch not bit-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Telemetry is observation-only: enabling the full observability stack —
/// scopes, counters, per-epoch records — must not shift a single bit of the
/// embedding at any thread count. This is the zero-interference contract
/// that lets production runs keep `--metrics-json` on.
#[test]
fn fit_is_bit_identical_with_telemetry_on_or_off() {
    let graph = test_graph(7);
    let config = |threads: usize| CoaneConfig {
        embed_dim: 16,
        epochs: 3,
        context_size: 3,
        walk_length: 20,
        batch_size: 40,
        decoder_hidden: (32, 32),
        threads,
        ..Default::default()
    };
    let reference = Coane::new(config(1)).fit(&graph);
    for threads in [1usize, 4] {
        let obs = Obs::enabled();
        let z = Coane::try_new(config(threads))
            .unwrap()
            .with_observer(obs.clone())
            .try_fit(&graph)
            .unwrap();
        assert_eq!(
            reference.as_slice(),
            z.as_slice(),
            "telemetry perturbed the embedding at threads={threads}"
        );
        // The observer must have actually observed: a silent no-op collector
        // would make this test vacuous.
        assert_eq!(obs.events_of("epoch").len(), 3, "missing per-epoch records");
        assert!(obs.counter("train/batches") > 0, "no batch counter recorded");
        assert!(obs.scope_stat("fit").is_some(), "no fit scope recorded");
        assert!(obs.scope_stat("fit/prepare/walks").is_some(), "no nested walk scope");
    }
}

/// Same contract for inductive inference: `embed_nodes_obs` with a live
/// collector reproduces `embed_nodes` exactly.
#[test]
fn inference_is_bit_identical_with_telemetry_on_or_off() {
    let graph = test_graph(9);
    let config = CoaneConfig {
        embed_dim: 16,
        epochs: 2,
        context_size: 3,
        walk_length: 20,
        batch_size: 40,
        decoder_hidden: (32, 32),
        ..Default::default()
    };
    let (_, model, _) = Coane::new(config.clone()).fit_with_model(&graph);
    let nodes: Vec<u32> = (0..graph.num_nodes() as u32).step_by(5).collect();
    let plain = coane::core::embed_nodes(&model, &config, &graph, &nodes);
    let obs = Obs::enabled();
    let observed = coane::core::embed_nodes_obs(&model, &config, &graph, &nodes, &obs);
    assert_eq!(plain.as_slice(), observed.as_slice(), "telemetry perturbed inference");
    assert_eq!(obs.counter("infer/nodes"), nodes.len() as u64);
}

#[test]
fn walk_generation_is_bit_identical_across_thread_counts() {
    let graph = test_graph(11);
    let walker = Walker::new(
        &graph,
        WalkConfig { walks_per_node: 4, walk_length: 25, p: 0.5, q: 2.0, seed: 99 },
    );
    let w1 = walker.generate_all(1);
    let w4 = walker.generate_all(4);
    let w7 = walker.generate_all(7);
    assert_eq!(w1, w4, "walks differ between 1 and 4 threads");
    assert_eq!(w1, w7, "walks differ between 1 and 7 threads");
}

#[test]
fn matmul_kernels_are_bit_identical_across_thread_counts() {
    // Big enough that `pool::threads_for` actually engages the pool.
    let (m, k, n) = (257, 93, 65);
    let fill = |rows: usize, cols: usize, salt: u64| -> Matrix {
        let mut mat = Matrix::zeros(rows, cols);
        let mut s = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for x in mat.as_mut_slice() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Mix in exact zeros to exercise the skip paths.
            *x = if s.is_multiple_of(7) {
                0.0
            } else {
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            };
        }
        mat
    };
    let a = fill(m, k, 1);
    let b = fill(k, n, 2);
    let at = fill(k, m, 3); // lhs for matmul_tn (shared dim on rows)
    let c = fill(m, n, 4); // rhs sharing columns for matmul_nt

    pool::set_threads(1);
    let mm1 = a.matmul(&b);
    let tn1 = at.matmul_tn(&b);
    let nt1 = b.matmul_nt(&c); // (k×n)·(m×n)ᵀ
    for threads in [2, 4, 5] {
        pool::set_threads(threads);
        assert_eq!(mm1, a.matmul(&b), "matmul differs at {threads} threads");
        assert_eq!(tn1, at.matmul_tn(&b), "matmul_tn differs at {threads} threads");
        assert_eq!(nt1, b.matmul_nt(&c), "matmul_nt differs at {threads} threads");
    }
    pool::set_threads(1);
}
