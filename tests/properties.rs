//! Cross-crate property-based tests (proptest): structural invariants that
//! must hold for arbitrary inputs.

use coane::prelude::*;
use coane::walks::{ContextSet, ContextsConfig, PAD};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy: a random connected-ish edge list over `n` nodes.
fn arb_graph() -> impl Strategy<Value = AttributedGraph> {
    (5usize..40, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n, n);
        // spanning chain keeps every node reachable
        for i in 0..n - 1 {
            b.add_edge(i as u32, i as u32 + 1, 1.0);
        }
        use rand::Rng;
        for _ in 0..n {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                b.add_edge(u, v, rng.gen_range(0.5..2.0));
            }
        }
        b.with_attrs(NodeAttributes::identity(n)).build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn walks_only_traverse_edges(g in arb_graph(), seed in any::<u64>()) {
        let walker = coane::walks::Walker::new(
            &g,
            coane::walks::WalkConfig { walk_length: 12, seed, ..Default::default() },
        );
        for walk in walker.generate_all(1) {
            for w in walk.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn contexts_center_correct_and_counts_match(g in arb_graph(), seed in any::<u64>()) {
        let walker = coane::walks::Walker::new(
            &g,
            coane::walks::WalkConfig { walk_length: 10, seed, ..Default::default() },
        );
        let walks = walker.generate_all(1);
        let cs = ContextSet::build(
            &walks,
            g.num_nodes(),
            &ContextsConfig { context_size: 5, subsample_t: f64::INFINITY, seed },
        );
        // total contexts == total walk positions (no subsampling)
        let positions: usize = walks.iter().map(Vec::len).sum();
        prop_assert_eq!(cs.num_contexts(), positions);
        for v in 0..g.num_nodes() as u32 {
            for w in cs.contexts_of(v) {
                prop_assert_eq!(w[2], v);
                for &u in w {
                    prop_assert!(u == PAD || (u as usize) < g.num_nodes());
                }
            }
        }
    }

    #[test]
    fn d_matrix_row_sums_bounded_by_slots(g in arb_graph(), seed in any::<u64>()) {
        let walker = coane::walks::Walker::new(
            &g,
            coane::walks::WalkConfig { walk_length: 10, seed, ..Default::default() },
        );
        let walks = walker.generate_all(1);
        let cs = ContextSet::build(
            &walks,
            g.num_nodes(),
            &ContextsConfig { context_size: 3, subsample_t: f64::INFINITY, seed },
        );
        let co = coane::walks::CoMatrices::build(&cs, &g);
        for v in 0..g.num_nodes() as u32 {
            // each context contributes at most c−1 = 2 co-occurrences
            let bound = (cs.count(v) * 2) as f32;
            prop_assert!(co.d.row_sum(v) <= bound + 1e-3);
        }
    }

    #[test]
    fn edge_split_partitions_are_exact(g in arb_graph(), seed in any::<u64>()) {
        let m = g.num_edges();
        prop_assume!(m >= 10);
        // the split samples one non-edge per edge — the graph must be sparse
        // enough to supply them
        let n = g.num_nodes() as u64;
        prop_assume!(n * (n - 1) / 2 - m as u64 >= m as u64);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let s = EdgeSplit::new(&g, SplitConfig::paper(), &mut rng);
        prop_assert_eq!(
            s.train_pos.len() + s.val_pos.len() + s.test_pos.len(),
            m
        );
        prop_assert_eq!(s.train_graph.num_edges(), s.train_pos.len());
        for &(u, v) in &s.test_neg {
            prop_assert!(!g.has_edge(u, v));
        }
    }

    #[test]
    fn nmi_label_permutation_invariant(labels in proptest::collection::vec(0u32..5, 10..60)) {
        let permuted: Vec<u32> = labels.iter().map(|&l| (l + 3) % 5).collect();
        let direct = coane::eval::nmi(&labels, &labels);
        let perm = coane::eval::nmi(&labels, &permuted);
        prop_assert!((direct - perm).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&perm));
    }

    #[test]
    fn auc_monotone_transform_invariant(
        scores in proptest::collection::vec(-10.0f64..10.0, 10..100),
        flips in proptest::collection::vec(any::<bool>(), 10..100),
    ) {
        let n = scores.len().min(flips.len());
        let scores = &scores[..n];
        let labels = &flips[..n];
        prop_assume!(labels.iter().any(|&l| l) && labels.iter().any(|&l| !l));
        let a1 = coane::eval::roc_auc(scores, labels);
        let transformed: Vec<f64> = scores.iter().map(|&s| s.exp()).collect();
        let a2 = coane::eval::roc_auc(&transformed, labels);
        prop_assert!((a1 - a2).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&a1));
    }

    #[test]
    fn builder_graph_always_valid(edges in proptest::collection::vec((0u32..20, 0u32..20), 0..80)) {
        let mut b = GraphBuilder::new(20, 20);
        for (u, v) in edges {
            if u != v {
                b.add_edge(u, v, 1.0);
            }
        }
        let g = b.with_attrs(NodeAttributes::identity(20)).build();
        g.validate(); // panics on violation
        // adjacency symmetric by construction
        for u in 0..20u32 {
            for &v in g.neighbors_of(u) {
                prop_assert!(g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn matrix_matmul_associative_shapes(
        a in 1usize..6, b in 1usize..6, c in 1usize..6,
        seed in any::<u64>(),
    ) {
        use coane::nn::Matrix;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let m1 = coane::nn::init::uniform(a, b, -1.0, 1.0, &mut rng);
        let m2 = coane::nn::init::uniform(b, c, -1.0, 1.0, &mut rng);
        let prod = m1.matmul(&m2);
        prop_assert_eq!(prod.shape(), (a, c));
        // (M1 M2)ᵀ == M2ᵀ M1ᵀ
        let lhs = prod.transpose();
        let rhs = m2.transpose().matmul(&m1.transpose());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        let _ = Matrix::zeros(1, 1);
    }
}

/// Strategy: a graph with random *sparse* attribute rows — including
/// duplicate attribute indices within a row, which `NodeAttributes` keeps
/// (sorted, adjacent) and batch builders must sum in a pinned order.
fn arb_sparse_attr_graph() -> impl Strategy<Value = AttributedGraph> {
    (4usize..24, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        use rand::Rng;
        let d = 6usize;
        let mut b = GraphBuilder::new(n, d);
        for i in 0..n - 1 {
            b.add_edge(i as u32, i as u32 + 1, 1.0);
        }
        for _ in 0..n {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                b.add_edge(u, v, 1.0);
            }
        }
        let rows: Vec<Vec<(u32, f32)>> = (0..n)
            .map(|_| {
                (0..rng.gen_range(0..5))
                    .map(|_| (rng.gen_range(0..d as u32), rng.gen_range(-2.0..2.0)))
                    .collect()
            })
            .collect();
        b.with_attrs(NodeAttributes::from_sparse_rows(d, &rows)).build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The epoch-persistent context-row cache must reproduce the reference
    /// triplet builder bit for bit — same sparse operand, same segment
    /// offsets, same dense targets — for both encoders and arbitrary node
    /// multisets (duplicates included).
    #[test]
    fn context_row_cache_matches_reference_builder(
        g in arb_sparse_attr_graph(),
        seed in any::<u64>(),
    ) {
        use coane::core::batch::ContextBatch;
        use coane::core::ContextRowCache;
        let walker = coane::walks::Walker::new(
            &g,
            coane::walks::WalkConfig { walk_length: 12, seed, ..Default::default() },
        );
        let walks = walker.generate_all(1);
        let cs = ContextSet::build(
            &walks,
            g.num_nodes(),
            &ContextsConfig { context_size: 3, subsample_t: f64::INFINITY, seed },
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA5);
        use rand::Rng;
        for encoder in [EncoderKind::Convolution, EncoderKind::FullyConnected] {
            let cache = ContextRowCache::build(&g, &cs, encoder);
            prop_assert_eq!(cache.num_contexts(), cs.num_contexts());
            let m = rng.gen_range(1..2 * g.num_nodes() + 1);
            let nodes: Vec<u32> =
                (0..m).map(|_| rng.gen_range(0..g.num_nodes() as u32)).collect();
            let fresh = ContextBatch::build(&g, &cs, &nodes, encoder);
            let cached = cache.batch(&g, &nodes);
            prop_assert!(*cached.rb == *fresh.rb, "rb mismatch ({:?})", encoder);
            prop_assert!(cached.offsets == fresh.offsets, "offsets mismatch ({:?})", encoder);
            prop_assert!(cached.x_target == fresh.x_target, "x_target mismatch ({:?})", encoder);
        }
    }
}

/// Strategy: arbitrary text built from a palette of benign and hostile
/// characters — digits, signs, exponents, `NaN`/`inf` fragments, whitespace
/// and separators. (The vendored proptest has no string strategies, so
/// strings are assembled from generated bytes.)
fn arb_parser_text() -> impl Strategy<Value = String> {
    const PALETTE: &[char] = &[
        'a', 'b', 'z', 'N', 'n', 'f', 'i', 'e', 'E', '0', '1', '7', '9', '.', '-', '+', '_', ':',
        ',', '"', ' ', ' ', '\t', '\n', '\n', '\r',
    ];
    proptest::collection::vec(any::<u8>(), 0..400)
        .prop_map(|bytes| bytes.iter().map(|&b| PALETTE[b as usize % PALETTE.len()]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn content_parser_never_panics_and_errors_carry_line_numbers(text in arb_parser_text()) {
        match coane::graph::io::parse_content_lines(text.as_bytes()) {
            Ok(rows) => {
                for row in rows {
                    prop_assert!(row.line >= 1);
                    prop_assert!(row.attrs.iter().all(|&(i, v)| {
                        (i as usize) < row.num_attrs && v.is_finite() && v != 0.0
                    }));
                }
            }
            Err(e) => prop_assert!(
                e.parse_line().is_some(),
                "parse error without a line number: {}", e
            ),
        }
    }

    #[test]
    fn cites_parser_never_panics_and_errors_carry_line_numbers(text in arb_parser_text()) {
        match coane::graph::io::parse_cites_lines(text.as_bytes()) {
            Ok(pairs) => {
                for (line, citing, cited) in pairs {
                    prop_assert!(line >= 1);
                    prop_assert!(!citing.is_empty() && !cited.is_empty());
                }
            }
            Err(e) => prop_assert!(
                e.parse_line().is_some(),
                "parse error without a line number: {}", e
            ),
        }
    }

    #[test]
    fn parsers_survive_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        // Raw (possibly non-UTF-8) input: never panic; invalid UTF-8 is an
        // Io error, everything else is a Parse error with a line number.
        for result in [
            coane::graph::io::parse_content_lines(&bytes[..]).map(|_| ()),
            coane::graph::io::parse_cites_lines(&bytes[..]).map(|_| ()),
        ] {
            if let Err(e) = result {
                prop_assert!(
                    e.kind() == "io" || e.parse_line().is_some(),
                    "unexpected error shape: {}", e
                );
            }
        }
    }
}

/// Strategy: a sparse row with strictly increasing columns and arbitrary
/// f32 *bit patterns* (including NaN payloads, infinities, subnormals) —
/// the codec must round-trip bits, not values.
fn arb_sparse_row() -> impl Strategy<Value = (Vec<u32>, Vec<f32>)> {
    proptest::collection::vec((any::<u32>(), any::<u32>()), 0..64).prop_map(|pairs| {
        let mut cols: Vec<u32> = pairs.iter().map(|&(c, _)| c).collect();
        cols.sort_unstable();
        cols.dedup();
        let vals: Vec<f32> =
            pairs.iter().take(cols.len()).map(|&(_, v)| f32::from_bits(v)).collect();
        (cols, vals)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compressed_rows_round_trip_bit_exactly(rows in proptest::collection::vec(arb_sparse_row(), 0..12)) {
        // Encode a whole stream of rows, then decode sequentially: columns
        // and value bit patterns must survive, and the cursor must land
        // exactly on the end of the stream (no silent over/under-read).
        let mut buf = Vec::new();
        for (cols, vals) in &rows {
            coane::core::rowcodec::encode_row(cols, vals, &mut buf);
        }
        let mut pos = 0usize;
        for (cols, vals) in &rows {
            let (mut c, mut v) = (Vec::new(), Vec::new());
            let nnz = coane::core::rowcodec::decode_row(&buf, &mut pos, &mut c, &mut v);
            prop_assert_eq!(nnz, cols.len());
            prop_assert_eq!(&c, cols);
            let got: Vec<u32> = v.iter().map(|x| x.to_bits()).collect();
            let want: Vec<u32> = vals.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(got, want);
        }
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn budgeted_cache_accounting_and_equivalence(g in arb_graph(), seed in any::<u64>()) {
        use coane::core::{CacheMode, ContextRowCache, EncoderKind};
        use std::sync::Arc;

        let walker = coane::walks::Walker::new(
            &g,
            coane::walks::WalkConfig { walk_length: 8, seed, ..Default::default() },
        );
        let walks = walker.generate_all(1);
        let contexts = Arc::new(ContextSet::build(
            &walks,
            g.num_nodes(),
            &ContextsConfig { context_size: 3, subsample_t: f64::INFINITY, seed },
        ));
        let unbounded = ContextRowCache::build(&g, &contexts, EncoderKind::Convolution);
        let nodes: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let reference = unbounded.batch(&g, &nodes);

        // Sweep budgets spanning all three rungs. Invariants: a non-rebuild
        // cache's reported bytes never exceed the budget that admitted it
        // (reported ≥ actual allocation by construction, so the budget
        // genuinely bounds memory), and every rung's batches are
        // bit-identical to the unbounded cache's.
        let m = unbounded.resident_bytes();
        for budget in [1usize, m / 4, m.saturating_sub(1), m, 2 * m] {
            let budget = budget.max(1);
            let cache = ContextRowCache::build_budgeted(&g, &contexts, EncoderKind::Convolution, budget);
            if cache.mode() != CacheMode::Rebuild {
                prop_assert!(
                    cache.resident_bytes() <= budget,
                    "{:?} reported {} > budget {}", cache.mode(), cache.resident_bytes(), budget
                );
            }
            prop_assert_eq!(cache.nnz(), unbounded.nnz());
            let batch = cache.batch(&g, &nodes);
            prop_assert_eq!(&*batch.rb, &*reference.rb);
            prop_assert_eq!(&batch.offsets, &reference.offsets);
            prop_assert_eq!(&batch.x_target, &reference.x_target);
        }
    }
}
