//! Cross-crate integration tests: the full CoANE pipeline (generate →
//! walk → train → evaluate) must beat chance clearly on planted-structure
//! graphs, and the headline qualitative claims of the paper must hold in
//! miniature.

use coane::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn test_graph(seed: u64) -> AttributedGraph {
    let cfg = SocialCircleConfig {
        num_nodes: 250,
        num_communities: 4,
        circles_per_community: 2,
        attr_dim: 120,
        num_edges: 900,
        mixing: 0.12,
        ..Default::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    social_circle_graph(&cfg, &mut rng).0
}

fn quick_config() -> CoaneConfig {
    CoaneConfig {
        embed_dim: 32,
        epochs: 6,
        context_size: 5,
        walk_length: 30,
        batch_size: 64,
        decoder_hidden: (64, 64),
        threads: 2,
        ..Default::default()
    }
}

#[test]
fn link_prediction_beats_chance_clearly() {
    let graph = test_graph(1);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let split = EdgeSplit::new(&graph, SplitConfig::paper(), &mut rng);
    let emb = Coane::new(quick_config()).fit(&split.train_graph);
    let auc = link_prediction_auc(
        emb.as_slice(),
        emb.cols(),
        &split.train_pos,
        &split.train_neg,
        &split.test_pos,
        &split.test_neg,
    );
    assert!(auc > 0.75, "CoANE link-prediction AUC only {auc}");
}

#[test]
fn clustering_recovers_planted_communities() {
    let graph = test_graph(3);
    let emb = Coane::new(quick_config()).fit(&graph);
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let score = nmi_clustering(emb.as_slice(), emb.cols(), graph.labels().unwrap(), &mut rng);
    assert!(score > 0.3, "CoANE clustering NMI only {score}");
}

#[test]
fn classification_beats_chance_clearly() {
    let graph = test_graph(5);
    let emb = Coane::new(quick_config()).fit(&graph);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let (train, test) = coane::graph::split::node_label_split(graph.num_nodes(), 0.2, &mut rng);
    let scores =
        classify_nodes(emb.as_slice(), emb.cols(), graph.labels().unwrap(), &train, &test, 1e-3);
    // 4 balanced classes → chance micro-F1 ≈ 0.25.
    assert!(scores.micro_f1 > 0.5, "micro-F1 only {}", scores.micro_f1);
    assert!(scores.macro_f1 > 0.4, "macro-F1 only {}", scores.macro_f1);
}

#[test]
fn attributes_help_when_informative() {
    // The WF ablation (no attributes) should not beat the full model on an
    // attribute-informative graph — the paper's headline WF comparison.
    let graph = test_graph(7);
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let split = EdgeSplit::new(&graph, SplitConfig::paper(), &mut rng);
    let auc_of = |ablation: Ablation| {
        let cfg = CoaneConfig { ablation, ..quick_config() };
        let emb = Coane::new(cfg).fit(&split.train_graph);
        link_prediction_auc(
            emb.as_slice(),
            emb.cols(),
            &split.train_pos,
            &split.train_neg,
            &split.test_pos,
            &split.test_neg,
        )
    };
    let full = auc_of(Ablation::full());
    let wf = auc_of(Ablation::wf());
    assert!(full > wf - 0.03, "attributes should not hurt materially: full {full} vs WF {wf}");
}

#[test]
fn pipeline_deterministic_end_to_end() {
    let graph = test_graph(9);
    let e1 = Coane::new(quick_config()).fit(&graph);
    let e2 = Coane::new(quick_config()).fit(&graph);
    assert_eq!(e1, e2, "end-to-end run not reproducible under fixed seed");
}

#[test]
fn baselines_and_coane_share_eval_protocol() {
    // The harness protocol must run unchanged for every Embedder.
    let graph = test_graph(10);
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let split = EdgeSplit::new(&graph, SplitConfig::paper(), &mut rng);
    let dw = DeepWalk {
        config: coane::baselines::skipgram::SkipGramConfig {
            dim: 32,
            walks_per_node: 4,
            walk_length: 20,
            epochs: 1,
            ..Default::default()
        },
    };
    let emb = dw.embed(&split.train_graph);
    let auc = link_prediction_auc(
        emb.as_slice(),
        emb.cols(),
        &split.train_pos,
        &split.train_neg,
        &split.test_pos,
        &split.test_neg,
    );
    assert!(auc > 0.6, "DeepWalk AUC only {auc}");
}
