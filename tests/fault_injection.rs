//! End-to-end fault-injection suite: kill-and-resume bit-equality, corrupted
//! checkpoint fallback, malformed external inputs, and NaN-poisoned
//! attributes. These exercise the full public pipeline rather than any
//! single crate's internals — the per-module unit tests live next to the
//! modules themselves.

use std::fs;
use std::path::PathBuf;

use coane::core::checkpoint::{checkpoint_file_name, latest_valid, list_checkpoint_epochs};
use coane::graph::io as gio;
use coane::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn small_graph() -> AttributedGraph {
    let cfg = SocialCircleConfig {
        num_nodes: 60,
        num_communities: 3,
        circles_per_community: 2,
        attr_dim: 40,
        num_edges: 180,
        mixing: 0.1,
        ..Default::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    social_circle_graph(&cfg, &mut rng).0
}

fn fast_config() -> CoaneConfig {
    CoaneConfig {
        embed_dim: 8,
        context_size: 3,
        walk_length: 12,
        walks_per_node: 2,
        epochs: 6,
        batch_size: 20,
        decoder_hidden: (16, 16),
        num_negatives: 3,
        subsample_t: 1e-3,
        threads: 1,
        ..Default::default()
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("coane_fault_injection").join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

// ---------------------------------------------------------------------------
// 1. Kill mid-training, resume, compare against an uninterrupted run.
// ---------------------------------------------------------------------------

#[test]
fn kill_and_resume_is_bit_identical() {
    let g = small_graph();
    let dir = tmp_dir("kill_resume");
    let ck = CheckpointConfig::new(&dir);

    // "Killed" run: only the first 3 of 6 epochs happen before the process
    // dies. Running a trainer configured for 3 epochs to completion leaves
    // the directory in exactly the state a kill after epoch 3 would.
    let partial = Coane::new(CoaneConfig { epochs: 3, ..fast_config() });
    partial.fit_resumable(&g, &ck).unwrap();
    assert!(list_checkpoint_epochs(&dir).unwrap().contains(&3));

    // Resume to the full 6 epochs.
    let full = Coane::new(fast_config());
    let (z_resumed, stats) = full.fit_resumable(&g, &ck).unwrap();
    assert_eq!(stats.resumed_from_epoch, Some(3));
    assert_eq!(stats.epoch_losses.len(), 6);

    // Reference: the same 6 epochs without any interruption or checkpointing.
    let z_direct = Coane::new(fast_config()).fit(&g);
    assert_eq!(z_resumed, z_direct, "resumed embeddings diverged from uninterrupted run");
}

#[test]
fn resume_is_bit_identical_across_thread_counts() {
    // The determinism contract makes `threads` a pure throughput knob, so a
    // checkpoint written at 1 thread must resume bit-identically at 4 — the
    // config fingerprint deliberately excludes it.
    let g = small_graph();
    let dir = tmp_dir("cross_thread_resume");
    let ck = CheckpointConfig::new(&dir);

    let partial = Coane::new(CoaneConfig { epochs: 2, threads: 1, ..fast_config() });
    partial.fit_resumable(&g, &ck).unwrap();

    let full = Coane::new(CoaneConfig { threads: 4, ..fast_config() });
    let (z_resumed, stats) = full.fit_resumable(&g, &ck).unwrap();
    assert_eq!(stats.resumed_from_epoch, Some(2));

    let z_direct = Coane::new(CoaneConfig { threads: 2, ..fast_config() }).fit(&g);
    assert_eq!(z_resumed, z_direct, "thread count changed the resumed result");
}

// ---------------------------------------------------------------------------
// 2. Corrupted / truncated newest checkpoint: fall back to the previous one.
// ---------------------------------------------------------------------------

#[test]
fn bit_flipped_newest_checkpoint_falls_back_to_previous() {
    let g = small_graph();
    let dir = tmp_dir("bit_flip_fallback");
    let ck = CheckpointConfig::new(&dir); // keep = 2: epochs 2 and 3 survive

    let partial = Coane::new(CoaneConfig { epochs: 3, ..fast_config() });
    partial.fit_resumable(&g, &ck).unwrap();
    assert_eq!(list_checkpoint_epochs(&dir).unwrap(), vec![3, 2], "newest-first, keep = 2");

    // Flip one payload bit in the newest checkpoint; the CRC must catch it.
    let newest = dir.join(checkpoint_file_name(3));
    let mut bytes = fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&newest, &bytes).unwrap();

    let (_, loaded) = latest_valid(&dir).unwrap().expect("epoch-2 checkpoint should be valid");
    assert_eq!(loaded.epoch, 2);

    let full = Coane::new(fast_config());
    let (z_resumed, stats) = full.fit_resumable(&g, &ck).unwrap();
    assert_eq!(stats.resumed_from_epoch, Some(2));

    let z_direct = Coane::new(fast_config()).fit(&g);
    assert_eq!(z_resumed, z_direct, "fallback resume diverged from uninterrupted run");
}

#[test]
fn truncated_newest_checkpoint_falls_back_to_previous() {
    let g = small_graph();
    let dir = tmp_dir("truncate_fallback");
    let ck = CheckpointConfig::new(&dir);

    let partial = Coane::new(CoaneConfig { epochs: 3, ..fast_config() });
    partial.fit_resumable(&g, &ck).unwrap();

    let newest = dir.join(checkpoint_file_name(3));
    let bytes = fs::read(&newest).unwrap();
    fs::write(&newest, &bytes[..bytes.len() / 3]).unwrap();

    let full = Coane::new(fast_config());
    let (z_resumed, stats) = full.fit_resumable(&g, &ck).unwrap();
    assert_eq!(stats.resumed_from_epoch, Some(2));

    let z_direct = Coane::new(fast_config()).fit(&g);
    assert_eq!(z_resumed, z_direct);
}

#[test]
fn all_checkpoints_corrupt_means_fresh_start() {
    let g = small_graph();
    let dir = tmp_dir("all_corrupt");
    let ck = CheckpointConfig::new(&dir);

    let partial = Coane::new(CoaneConfig { epochs: 3, ..fast_config() });
    partial.fit_resumable(&g, &ck).unwrap();
    for epoch in list_checkpoint_epochs(&dir).unwrap() {
        fs::write(dir.join(checkpoint_file_name(epoch)), b"not a checkpoint").unwrap();
    }

    let full = Coane::new(fast_config());
    let (z, stats) = full.fit_resumable(&g, &ck).unwrap();
    assert_eq!(stats.resumed_from_epoch, None, "corrupt checkpoints must not be resumed");
    assert_eq!(z, Coane::new(fast_config()).fit(&g));
}

// ---------------------------------------------------------------------------
// 3. Malformed external inputs: typed errors with context, never panics.
// ---------------------------------------------------------------------------

#[test]
fn corrupt_graph_json_is_a_typed_parse_error() {
    let dir = tmp_dir("corrupt_json");
    let path = dir.join("graph.json");
    fs::write(&path, b"{\"num_nodes\": 3, \"edges\": [[0, ").unwrap();
    let err = gio::load_json(&path).unwrap_err();
    assert_eq!(err.exit_code(), 4, "expected Parse, got {err}");

    fs::write(&path, b"\x00\xff\xfe garbage").unwrap();
    let err = gio::load_json(&path).unwrap_err();
    assert_eq!(err.exit_code(), 4);

    let err = gio::load_json(&dir.join("does_not_exist.json")).unwrap_err();
    assert_eq!(err.exit_code(), 3, "missing file is an Io error, got {err}");
}

#[test]
fn malformed_edge_list_errors_carry_line_numbers() {
    let dir = tmp_dir("bad_edges");
    let path = dir.join("edges.txt");

    fs::write(&path, "0 1\n1 two\n2 0\n").unwrap();
    let err = gio::load_edge_list(&path, None).unwrap_err();
    assert_eq!(err.parse_line(), Some(2), "error should name the offending line: {err}");

    // Out-of-range endpoint when the node count is pinned.
    fs::write(&path, "0 1\n1 2\n2 9\n").unwrap();
    let err = gio::load_edge_list(&path, Some(3)).unwrap_err();
    assert_eq!(err.parse_line(), Some(3));
}

#[test]
fn malformed_linqs_inputs_error_with_line_numbers() {
    let dir = tmp_dir("bad_linqs");
    let content = dir.join("x.content");
    let cites = dir.join("x.cites");

    // Ragged attribute row on line 2.
    fs::write(&content, "a 1 0 1 labelA\nb 1 0 labelB\nc 0 1 0 labelA\n").unwrap();
    fs::write(&cites, "a b\n").unwrap();
    let err = gio::load_linqs(&content, &cites).unwrap_err();
    assert_eq!(err.parse_line(), Some(2), "{err}");

    // Duplicate paper id on line 3.
    fs::write(&content, "a 1 0 labelA\nb 0 1 labelB\na 1 1 labelA\n").unwrap();
    let err = gio::load_linqs(&content, &cites).unwrap_err();
    assert_eq!(err.parse_line(), Some(3), "{err}");

    // Cites line with a single token, on line 2.
    fs::write(&content, "a 1 0 labelA\nb 0 1 labelB\n").unwrap();
    fs::write(&cites, "a b\nb\n").unwrap();
    let err = gio::load_linqs(&content, &cites).unwrap_err();
    assert_eq!(err.parse_line(), Some(2), "{err}");
}

#[test]
fn invalid_config_is_a_typed_error_not_a_panic() {
    let err = Coane::try_new(CoaneConfig { embed_dim: 0, ..fast_config() }).unwrap_err();
    assert_eq!(err.exit_code(), 2, "expected Config, got {err}");
    let err = Coane::try_new(CoaneConfig { context_size: 4, ..fast_config() }).unwrap_err();
    assert_eq!(err.exit_code(), 2, "even context size must be rejected: {err}");
}

// ---------------------------------------------------------------------------
// 4. NaN-poisoned attributes: recovery bounded by a typed Numeric error.
// ---------------------------------------------------------------------------

#[test]
fn nan_poisoned_attributes_finish_finite_or_surface_numeric_error() {
    // `with_attrs` trusts its caller on values (it only checks row count),
    // so NaN can enter through a hand-built attribute matrix. Training must
    // then either still converge to a finite embedding (if the NaNs never
    // reach the loss) or exhaust its LR-halving retries into a typed
    // Numeric error — never panic, never return non-finite output.
    let g = small_graph();
    let n = g.num_nodes();
    let mut rows = vec![vec![0.0f32; 4]; n];
    for (i, row) in rows.iter_mut().enumerate() {
        row[i % 4] = 1.0;
        if i % 5 == 0 {
            row[(i + 1) % 4] = f32::NAN;
        }
    }
    let poisoned = g.with_attrs(NodeAttributes::from_dense(4, &rows));

    let trainer = Coane::new(CoaneConfig { epochs: 2, max_lr_retries: 2, ..fast_config() });
    match trainer.try_fit(&poisoned) {
        Ok(z) => {
            assert!(z.as_slice().iter().all(|x| x.is_finite()), "Ok result must be finite");
        }
        Err(e) => {
            assert_eq!(e.exit_code(), 6, "expected Numeric, got {e}");
        }
    }
}

#[test]
fn injected_nan_survives_end_to_end_with_halved_lr() {
    // The same guard, driven through the public API with the test-only fault
    // hook: one injected NaN epoch must cost one recovery (LR halved once)
    // and still produce a finite embedding.
    let g = small_graph();
    let cfg = CoaneConfig { epochs: 3, ..fast_config() };
    let base_lr = cfg.learning_rate;
    let (z, _, stats) = Coane::new(cfg)
        .with_injected_loss_faults(&[1])
        .try_fit_with_model(&g)
        .expect("single fault must be recoverable");
    assert_eq!(stats.recoveries, 1);
    assert!((stats.final_lr - base_lr * 0.5).abs() < 1e-12);
    assert!(z.as_slice().iter().all(|x| x.is_finite()));
}
