//! End-to-end test of the `coane-cli` binary: generate → embed (+ save
//! model) → evaluate → infer, all through the real executable.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_coane-cli"))
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("coane_cli_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_workflow_through_the_binary() {
    let dir = tmpdir();
    let graph = dir.join("g.json");
    let emb = dir.join("e.csv");
    let model = dir.join("m.json");
    let inferred = dir.join("new.csv");

    // generate
    let out = cli()
        .args(["generate", "--preset", "webkb-texas", "--scale", "1.0", "--seed", "3"])
        .args(["--out", graph.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(graph.exists());

    // embed + save model
    let out = cli()
        .args(["embed", "--graph", graph.to_str().unwrap(), "--method", "coane"])
        .args(["--dim", "16", "--epochs", "2", "--out", emb.to_str().unwrap()])
        .args(["--save-model", model.to_str().unwrap()])
        .output()
        .expect("run embed");
    assert!(out.status.success(), "embed failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(emb.exists() && model.exists());

    // evaluate (clustering)
    let out = cli()
        .args(["evaluate", "--graph", graph.to_str().unwrap()])
        .args(["--embedding", emb.to_str().unwrap(), "--task", "cluster"])
        .output()
        .expect("run evaluate");
    assert!(out.status.success(), "evaluate failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("NMI"), "unexpected output: {stdout}");

    // infer with the saved model
    let out = cli()
        .args(["infer", "--model", model.to_str().unwrap()])
        .args(["--graph", graph.to_str().unwrap(), "--nodes", "0,5,10"])
        .args(["--out", inferred.to_str().unwrap()])
        .output()
        .expect("run infer");
    assert!(out.status.success(), "infer failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&inferred).unwrap();
    assert_eq!(text.lines().count(), 3, "expected 3 inferred rows");
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = cli().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_flag_reports_error() {
    let out = cli().args(["generate", "--preset", "cora"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
}

#[test]
fn exit_codes_match_the_error_taxonomy() {
    let dir = tmpdir();

    // 2 = configuration / usage errors.
    let out = cli().output().unwrap();
    assert_eq!(out.status.code(), Some(2), "no command should exit 2");
    let out = cli().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown command should exit 2");
    let out = cli().args(["generate", "--preset", "cora"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "missing --out should exit 2");

    // 3 = I/O: input file does not exist.
    let missing = dir.join("nope.json");
    let out = cli()
        .args(["embed", "--graph", missing.to_str().unwrap(), "--method", "coane"])
        .args(["--out", dir.join("e.csv").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "missing graph file should exit 3");

    // 4 = parse: file exists but is not a graph.
    let corrupt = dir.join("corrupt.json");
    std::fs::write(&corrupt, "{\"num_nodes\": oops").unwrap();
    let out = cli()
        .args(["embed", "--graph", corrupt.to_str().unwrap(), "--method", "coane"])
        .args(["--out", dir.join("e.csv").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "corrupt graph JSON should exit 4");
}

#[test]
fn checkpoint_resume_smoke_through_the_binary() {
    let dir = tmpdir().join("ckpt_smoke");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("g.json");
    let ck = dir.join("ckpts");
    let embed = |epochs: &str, out: &PathBuf, ckpt: bool| {
        let mut c = cli();
        c.args(["embed", "--graph", graph.to_str().unwrap(), "--method", "coane"]).args([
            "--dim",
            "8",
            "--epochs",
            epochs,
            "--out",
            out.to_str().unwrap(),
        ]);
        if ckpt {
            c.args(["--checkpoint-dir", ck.to_str().unwrap(), "--checkpoint-every", "1"]);
        }
        c.output().unwrap()
    };

    assert!(cli()
        .args(["generate", "--preset", "webkb-cornell", "--scale", "1.0", "--seed", "11"])
        .args(["--out", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    // "Interrupted" run: 2 of 4 epochs, checkpointing each one.
    let partial = dir.join("partial.csv");
    let out = embed("2", &partial, true);
    assert!(out.status.success(), "partial embed failed: {}", String::from_utf8_lossy(&out.stderr));
    // Progress lives on stderr; stdout stays pipe-clean.
    assert!(String::from_utf8_lossy(&out.stderr).contains("checkpoint(s)"));
    assert!(out.stdout.is_empty(), "embed wrote to stdout");

    // Re-run asking for 4 epochs: must resume from the checkpoint...
    let resumed = dir.join("resumed.csv");
    let out = embed("4", &resumed, true);
    assert!(out.status.success(), "resumed embed failed: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("resumed from checkpoint at epoch 2"), "no resume notice: {stderr}");

    // ...and produce byte-identical output to an uninterrupted 4-epoch run.
    let direct = dir.join("direct.csv");
    let out = embed("4", &direct, false);
    assert!(out.status.success(), "direct embed failed: {}", String::from_utf8_lossy(&out.stderr));
    let resumed_bytes = std::fs::read(&resumed).unwrap();
    let direct_bytes = std::fs::read(&direct).unwrap();
    assert!(!resumed_bytes.is_empty());
    assert_eq!(resumed_bytes, direct_bytes, "resumed CSV differs from uninterrupted run");
}

/// stdout carries only results: `embed` with full progress/telemetry flags
/// must keep it byte-empty, and `--quiet` must silence stderr too.
#[test]
fn stdout_stays_pipe_clean() {
    let dir = tmpdir().join("pipe_clean");
    std::fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("g.json");
    assert!(cli()
        .args(["generate", "--preset", "webkb-texas", "--scale", "1.0", "--seed", "5"])
        .args(["--out", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    // Noisy flags on: everything lands on stderr, nothing on stdout.
    let emb = dir.join("e.csv");
    let metrics = dir.join("m.jsonl");
    let out = cli()
        .args(["embed", "--graph", graph.to_str().unwrap(), "--method", "coane"])
        .args(["--dim", "8", "--epochs", "2", "--out", emb.to_str().unwrap()])
        .args(["--log-every", "1", "--metrics-json", metrics.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "embed failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(out.stdout.is_empty(), "stdout not clean: {}", String::from_utf8_lossy(&out.stdout));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("epoch 1/2"), "missing progress line: {stderr}");
    assert!(stderr.contains("observability summary"), "missing summary: {stderr}");

    // --quiet: both streams silent, but the telemetry file is still written.
    let emb_q = dir.join("eq.csv");
    let metrics_q = dir.join("mq.jsonl");
    let out = cli()
        .args(["embed", "--graph", graph.to_str().unwrap(), "--method", "coane"])
        .args(["--dim", "8", "--epochs", "2", "--out", emb_q.to_str().unwrap()])
        .args(["--metrics-json", metrics_q.to_str().unwrap(), "--quiet"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(out.stdout.is_empty(), "quiet stdout not empty");
    assert!(
        out.stderr.is_empty(),
        "quiet stderr not empty: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(metrics_q.exists(), "--quiet must not suppress --metrics-json");

    // Telemetry observes but never perturbs: both runs are byte-identical.
    assert_eq!(std::fs::read(&emb).unwrap(), std::fs::read(&emb_q).unwrap());

    // `evaluate` results are the one thing that belongs on stdout.
    let out = cli()
        .args(["evaluate", "--graph", graph.to_str().unwrap()])
        .args(["--embedding", emb.to_str().unwrap(), "--task", "cluster"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("NMI"));
}

/// `--metrics-json` emits one JSON object per line; per-epoch records carry
/// all three objective terms, wall time, throughput, and cache statistics.
#[test]
fn metrics_jsonl_schema() {
    use serde::Value;

    let dir = tmpdir().join("metrics_schema");
    std::fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("g.json");
    assert!(cli()
        .args(["generate", "--preset", "webkb-cornell", "--scale", "1.0", "--seed", "7"])
        .args(["--out", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let metrics = dir.join("m.jsonl");
    let out = cli()
        .args(["embed", "--graph", graph.to_str().unwrap(), "--method", "coane"])
        .args(["--dim", "8", "--epochs", "3", "--out", dir.join("e.csv").to_str().unwrap()])
        .args(["--metrics-json", metrics.to_str().unwrap(), "--quiet"])
        .output()
        .unwrap();
    assert!(out.status.success(), "embed failed: {}", String::from_utf8_lossy(&out.stderr));

    let text = std::fs::read_to_string(&metrics).unwrap();
    let mut epochs = 0usize;
    let mut kinds = Vec::new();
    for line in text.lines() {
        let v: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("invalid JSON line {line:?}: {e:?}"));
        let Value::Object(map) = v else { panic!("line is not an object: {line}") };
        assert!(matches!(map.get("t"), Some(Value::Number(_))), "missing t: {line}");
        let Some(Value::String(kind)) = map.get("event") else {
            panic!("missing event kind: {line}");
        };
        kinds.push(kind.clone());
        if kind == "epoch" {
            epochs += 1;
            for key in [
                "epoch",
                "loss",
                "loss_pos",
                "loss_neg",
                "loss_att",
                "grad_norm",
                "lr",
                "seconds",
                "nodes",
                "nodes_per_sec",
                "batches",
                "cache_rows",
                "nnz",
                "prefetch_depth",
                "prefetch_occupancy",
            ] {
                assert!(
                    matches!(map.get(key), Some(Value::Number(_))),
                    "epoch record missing numeric {key}: {line}"
                );
            }
        }
    }
    assert_eq!(epochs, 3, "expected one record per epoch: {kinds:?}");
    assert!(kinds.iter().any(|k| k == "run"), "missing run record");
    assert!(kinds.iter().any(|k| k == "scope"), "missing scope aggregates");
    assert!(kinds.iter().any(|k| k == "summary"), "missing summary line");
}

#[test]
fn bad_node_id_rejected_by_infer() {
    let dir = tmpdir();
    let graph = dir.join("g2.json");
    let model = dir.join("m2.json");
    let emb = dir.join("e2.csv");
    assert!(cli()
        .args(["generate", "--preset", "webkb-cornell", "--scale", "1.0", "--seed", "9"])
        .args(["--out", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(cli()
        .args(["embed", "--graph", graph.to_str().unwrap(), "--method", "coane"])
        .args(["--dim", "8", "--epochs", "1", "--out", emb.to_str().unwrap()])
        .args(["--save-model", model.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = cli()
        .args(["infer", "--model", model.to_str().unwrap()])
        .args(["--graph", graph.to_str().unwrap(), "--nodes", "999999"])
        .args(["--out", dir.join("x.csv").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
}

/// End-to-end serving workflow through the binary: embed → export-store →
/// serve (addr-file rendezvous on port 0) → query every route → shutdown.
/// Also the stdout-purity check for the new subcommands: `query` prints
/// exactly one JSON document; `export-store` and `serve` print nothing.
#[test]
fn serve_workflow_through_the_binary() {
    let dir = tmpdir().join("serve_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("g.json");
    let emb = dir.join("e.csv");
    let model = dir.join("m.json");
    let store = dir.join("e.store");
    let addr_file = dir.join("server.addr");

    assert!(cli()
        .args(["generate", "--preset", "webkb-texas", "--scale", "1.0", "--seed", "5"])
        .args(["--out", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(cli()
        .args(["embed", "--graph", graph.to_str().unwrap(), "--method", "coane"])
        .args(["--dim", "16", "--epochs", "1", "--out", emb.to_str().unwrap()])
        .args(["--save-model", model.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    // export-store: pipe-clean stdout, store file appears.
    let out = cli()
        .args(["export-store", "--embedding", emb.to_str().unwrap()])
        .args(["--out", store.to_str().unwrap(), "--meta", "cli smoke"])
        .output()
        .unwrap();
    assert!(out.status.success(), "export-store failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(out.stdout.is_empty(), "export-store wrote to stdout");
    assert!(store.exists());

    // serve in the background; the addr file is the rendezvous, and the
    // query tool itself waits for it (no poll loop here). The connection
    // knobs parse through the binary.
    let server = cli()
        .args(["serve", "--store", store.to_str().unwrap()])
        .args(["--model", model.to_str().unwrap(), "--graph", graph.to_str().unwrap()])
        .args(["--addr", "127.0.0.1:0", "--addr-file", addr_file.to_str().unwrap()])
        .args(["--keep-alive-timeout", "5", "--read-deadline", "10", "--batch-window", "0"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();

    let query = |route: &str, body: Option<&str>| {
        let mut c = cli();
        c.args(["query", "--addr-file", addr_file.to_str().unwrap(), "--addr-timeout", "60"]);
        c.args(["--route", route]);
        if let Some(b) = body {
            c.args(["--body", b]);
        }
        c.output().unwrap()
    };

    // healthz through the query subcommand: one JSON line on stdout.
    let out = query("healthz", None);
    assert!(out.status.success(), "healthz failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"status\""), "unexpected stdout: {stdout}");
    assert_eq!(stdout.lines().count(), 1, "query stdout must be one JSON document");

    // kNN, link scoring, and inductive encoding all answer 200.
    let out = query("knn", Some(r#"{"ids":[0,1],"k":3}"#));
    assert!(out.status.success(), "knn failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"neighbors\""));
    let out = query("score_links", Some(r#"{"pairs":[[0,1]]}"#));
    assert!(out.status.success(), "score_links failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"scores\""));
    let out = query(
        "encode",
        Some(r#"{"nodes":[{"attr_indices":[0],"attr_values":[1.0],"edges":[0,1]}],"k":2}"#),
    );
    assert!(out.status.success(), "encode failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"embeddings\""));

    // A server-side error surfaces as a nonzero exit with the body on stderr.
    let out = query("knn", Some(r#"{"ids":[999999],"k":3}"#));
    assert_eq!(out.status.code(), Some(2), "bad query should exit 2");
    assert!(out.stdout.is_empty(), "failed query must not write stdout");

    // Load mode: N concurrent keep-alive clients, one summary JSON line.
    let out = cli()
        .args(["query", "--addr-file", addr_file.to_str().unwrap(), "--addr-timeout", "60"])
        .args(["--route", "knn", "--body", r#"{"ids":[0],"k":3}"#])
        .args(["--concurrency", "2", "--repeat", "4"])
        .output()
        .unwrap();
    assert!(out.status.success(), "load mode failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 1, "load mode stdout must be one JSON document");
    assert!(stdout.contains("\"total\":8"), "unexpected load summary: {stdout}");
    assert!(stdout.contains("\"failed\":0"), "load run had failures: {stdout}");

    // shutdown; server exits cleanly with a pipe-clean stdout.
    let out = query("shutdown", None);
    assert!(out.status.success(), "shutdown failed: {}", String::from_utf8_lossy(&out.stderr));
    let server_out = server.wait_with_output().unwrap();
    assert!(server_out.status.success(), "server exited nonzero");
    assert!(server_out.stdout.is_empty(), "serve wrote to stdout");
    assert!(
        String::from_utf8_lossy(&server_out.stderr).contains("listening on"),
        "serve progress belongs on stderr"
    );
}

/// A query against an addr-file that never appears must fail with a typed
/// config error at the deadline — not poll forever.
#[test]
fn query_addr_file_rendezvous_times_out_with_typed_error() {
    let dir = tmpdir().join("no_server");
    std::fs::create_dir_all(&dir).unwrap();
    let missing = dir.join("never.addr");
    let started = std::time::Instant::now();
    let out = cli()
        .args(["query", "--addr-file", missing.to_str().unwrap(), "--addr-timeout", "0.3"])
        .args(["--route", "healthz"])
        .output()
        .unwrap();
    assert!(started.elapsed() < std::time::Duration::from_secs(10), "timeout did not bound wait");
    assert_eq!(out.status.code(), Some(2), "missing addr file should be a config error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("did not appear"), "unexpected stderr: {stderr}");
    assert!(out.stdout.is_empty(), "failed query must not write stdout");
}

/// Store-format failures through the binary: exit code 8 and a typed
/// message, per the error taxonomy.
#[test]
fn corrupt_store_exits_8_through_the_binary() {
    let dir = tmpdir().join("store_errors");
    std::fs::create_dir_all(&dir).unwrap();

    // Not a store at all.
    let fake = dir.join("fake.store");
    std::fs::write(&fake, b"definitely not a store").unwrap();
    let out = cli().args(["serve", "--store", fake.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(8), "bad magic should exit 8");
    assert!(String::from_utf8_lossy(&out.stderr).contains("embedding-store error"));

    // A real store with a flipped payload bit.
    let emb = dir.join("e.csv");
    std::fs::write(&emb, "0.5,0.25\n-1.0,2.0\n").unwrap();
    let store = dir.join("ok.store");
    assert!(cli()
        .args(["export-store", "--embedding", emb.to_str().unwrap()])
        .args(["--out", store.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let mut bytes = std::fs::read(&store).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&store, &bytes).unwrap();
    let out = cli().args(["serve", "--store", store.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(8), "CRC mismatch should exit 8");
    assert!(String::from_utf8_lossy(&out.stderr).contains("CRC32 mismatch"));

    // Mismatched id file through export-store.
    let ids = dir.join("ids.txt");
    std::fs::write(&ids, "7\n").unwrap();
    let out = cli()
        .args(["export-store", "--embedding", emb.to_str().unwrap()])
        .args(["--ids", ids.to_str().unwrap()])
        .args(["--out", dir.join("bad.store").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(8), "id/vector count mismatch should exit 8");
}
