//! End-to-end test of the `coane-cli` binary: generate → embed (+ save
//! model) → evaluate → infer, all through the real executable.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_coane-cli"))
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("coane_cli_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_workflow_through_the_binary() {
    let dir = tmpdir();
    let graph = dir.join("g.json");
    let emb = dir.join("e.csv");
    let model = dir.join("m.json");
    let inferred = dir.join("new.csv");

    // generate
    let out = cli()
        .args(["generate", "--preset", "webkb-texas", "--scale", "1.0", "--seed", "3"])
        .args(["--out", graph.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(graph.exists());

    // embed + save model
    let out = cli()
        .args(["embed", "--graph", graph.to_str().unwrap(), "--method", "coane"])
        .args(["--dim", "16", "--epochs", "2", "--out", emb.to_str().unwrap()])
        .args(["--save-model", model.to_str().unwrap()])
        .output()
        .expect("run embed");
    assert!(out.status.success(), "embed failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(emb.exists() && model.exists());

    // evaluate (clustering)
    let out = cli()
        .args(["evaluate", "--graph", graph.to_str().unwrap()])
        .args(["--embedding", emb.to_str().unwrap(), "--task", "cluster"])
        .output()
        .expect("run evaluate");
    assert!(out.status.success(), "evaluate failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("NMI"), "unexpected output: {stdout}");

    // infer with the saved model
    let out = cli()
        .args(["infer", "--model", model.to_str().unwrap()])
        .args(["--graph", graph.to_str().unwrap(), "--nodes", "0,5,10"])
        .args(["--out", inferred.to_str().unwrap()])
        .output()
        .expect("run infer");
    assert!(out.status.success(), "infer failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&inferred).unwrap();
    assert_eq!(text.lines().count(), 3, "expected 3 inferred rows");
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = cli().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_flag_reports_error() {
    let out = cli().args(["generate", "--preset", "cora"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
}

#[test]
fn bad_node_id_rejected_by_infer() {
    let dir = tmpdir();
    let graph = dir.join("g2.json");
    let model = dir.join("m2.json");
    let emb = dir.join("e2.csv");
    assert!(cli()
        .args(["generate", "--preset", "webkb-cornell", "--scale", "1.0", "--seed", "9"])
        .args(["--out", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(cli()
        .args(["embed", "--graph", graph.to_str().unwrap(), "--method", "coane"])
        .args(["--dim", "8", "--epochs", "1", "--out", emb.to_str().unwrap()])
        .args(["--save-model", model.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = cli()
        .args(["infer", "--model", model.to_str().unwrap()])
        .args(["--graph", graph.to_str().unwrap(), "--nodes", "999999"])
        .args(["--out", dir.join("x.csv").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
}
