//! Golden-fixture snapshot tests: every intermediate of the CoANE pipeline
//! — walks, padded contexts, the co-occurrence matrices D and D¹, the
//! first-epoch loss, and the final embedding — is locked against committed
//! values computed on a committed 40-node graph
//! (`tests/fixtures/golden_graph.json`).
//!
//! These tests pin the *exact* bits. Any change to walk order, subsampling,
//! padding, counting, or training arithmetic shows up here first, which is
//! the point: numerical refactors must either be provably identity-preserving
//! or consciously re-bless the constants below (run with
//! `GOLDEN_PRINT=1 cargo test --test golden -- --nocapture` to print the
//! values a changed pipeline produces).

use std::path::Path;

use coane::graph::io as gio;
use coane::prelude::*;
use coane::walks::{CoMatrices, ContextSet, ContextsConfig, WalkConfig, Walker, PAD};

// ── committed golden values ────────────────────────────────────────────────

const GOLDEN_WALK_COUNT: usize = 40;
const GOLDEN_WALK_STEPS: usize = 3200;
const GOLDEN_WALK_HASH: u64 = 0x1474c38ea44fa748;

const GOLDEN_NUM_CONTEXTS: usize = 3200;
const GOLDEN_CONTEXT_HASH: u64 = 0x68b202c539e03af1;

const GOLDEN_D_NNZ: usize = 310;
const GOLDEN_D_HASH: u64 = 0x5ee3a8793cd437b8;
const GOLDEN_D1_NNZ: usize = 132;
const GOLDEN_D1_HASH: u64 = 0x9c2db73fc1af4873;

const GOLDEN_FIRST_EPOCH_LOSS: f64 = 169.2196502685547;
const GOLDEN_EMBEDDING_HASH: u64 = 0x61a066189cae83c5;

// ── helpers ────────────────────────────────────────────────────────────────

/// 64-bit FNV-1a over a byte stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    fn f32(&mut self, v: f32) {
        // Hash the bit pattern: golden tests pin exact floats, including
        // signed zeros, so `to_bits` (not a rounded decimal) is the key.
        self.u32(v.to_bits());
    }
}

fn fixture() -> AttributedGraph {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden_graph.json");
    gio::load_json(Path::new(path)).expect("committed fixture must load")
}

fn walk_cfg() -> WalkConfig {
    WalkConfig { walks_per_node: 1, walk_length: 80, p: 1.0, q: 1.0, seed: 42 }
}

fn ctx_cfg() -> ContextsConfig {
    // Subsampling disabled so every walk position becomes a context and the
    // snapshot covers padding behaviour at both walk ends.
    ContextsConfig { context_size: 5, subsample_t: f64::INFINITY, seed: 7 }
}

fn blessed(name: &str, actual: u64, expected: u64) {
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!("{name} = {actual:#018x}");
        return;
    }
    assert_eq!(actual, expected, "{name} drifted: got {actual:#018x}, committed {expected:#018x}");
}

// ── snapshots ──────────────────────────────────────────────────────────────

#[test]
fn walks_match_committed_snapshot() {
    let graph = fixture();
    let walks = Walker::new(&graph, walk_cfg()).generate_all(1);
    assert_eq!(walks.len(), GOLDEN_WALK_COUNT);
    let steps: usize = walks.iter().map(Vec::len).sum();
    assert_eq!(steps, GOLDEN_WALK_STEPS);
    let mut h = Fnv::new();
    for walk in &walks {
        h.u32(walk.len() as u32);
        for &v in walk {
            h.u32(v);
        }
    }
    blessed("GOLDEN_WALK_HASH", h.0, GOLDEN_WALK_HASH);

    // Thread count is a pure throughput knob: identical walks at 4 threads.
    assert_eq!(walks, Walker::new(&graph, walk_cfg()).generate_all(4));
}

#[test]
fn padded_contexts_match_committed_snapshot() {
    let graph = fixture();
    let walks = Walker::new(&graph, walk_cfg()).generate_all(1);
    let contexts = ContextSet::build(&walks, graph.num_nodes(), &ctx_cfg());
    assert_eq!(contexts.num_contexts(), GOLDEN_NUM_CONTEXTS);
    assert_eq!(contexts.context_size(), 5);
    // Padding must actually occur (walk-end windows are shorter than c).
    let padded = (0..graph.num_nodes() as u32).any(|v| contexts.slots_of(v).contains(&PAD));
    assert!(padded, "expected PAD slots at walk boundaries");

    let mut h = Fnv::new();
    for v in 0..graph.num_nodes() as u32 {
        h.u32(contexts.count(v) as u32);
        for &slot in contexts.slots_of(v) {
            h.u32(slot);
        }
    }
    blessed("GOLDEN_CONTEXT_HASH", h.0, GOLDEN_CONTEXT_HASH);
}

#[test]
fn cooccurrence_matrices_match_committed_snapshot() {
    let graph = fixture();
    let walks = Walker::new(&graph, walk_cfg()).generate_all(1);
    let contexts = ContextSet::build(&walks, graph.num_nodes(), &ctx_cfg());
    let co = CoMatrices::build(&contexts, &graph);

    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!("GOLDEN_D_NNZ = {}", co.d.nnz());
        println!("GOLDEN_D1_NNZ = {}", co.d1.nnz());
    } else {
        assert_eq!(co.d.nnz(), GOLDEN_D_NNZ, "D nnz drifted");
        assert_eq!(co.d1.nnz(), GOLDEN_D1_NNZ, "D¹ nnz drifted");
    }

    let hash_counts = |m: &coane::walks::cooccurrence::SparseCounts| {
        let mut h = Fnv::new();
        for i in 0..m.num_rows() as u32 {
            let (cols, vals) = m.row(i);
            h.u32(cols.len() as u32);
            for (&c, &v) in cols.iter().zip(vals) {
                h.u32(c);
                h.f32(v);
            }
        }
        h.0
    };
    blessed("GOLDEN_D_HASH", hash_counts(&co.d), GOLDEN_D_HASH);
    blessed("GOLDEN_D1_HASH", hash_counts(&co.d1), GOLDEN_D1_HASH);
}

fn train_cfg() -> CoaneConfig {
    CoaneConfig { embed_dim: 8, epochs: 3, seed: 42, threads: 1, ..Default::default() }
}

#[test]
fn first_epoch_loss_matches_committed_value() {
    let graph = fixture();
    let obs = Obs::enabled();
    let trainer = Coane::try_new(train_cfg()).unwrap().with_observer(obs.clone());
    trainer.try_fit(&graph).unwrap();
    let events = obs.events_of("epoch");
    assert_eq!(events.len(), 3, "expected one telemetry record per epoch");
    let coane::obs::Value::Object(first) = &events[0] else { panic!("epoch record not an object") };
    let Some(coane::obs::Value::Number(loss)) = first.get("loss") else {
        panic!("epoch record has no loss")
    };
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!("GOLDEN_FIRST_EPOCH_LOSS = {loss:?}");
        return;
    }
    assert_eq!(
        *loss, GOLDEN_FIRST_EPOCH_LOSS,
        "first-epoch loss drifted: got {loss:?}, committed {GOLDEN_FIRST_EPOCH_LOSS:?}"
    );
}

#[test]
fn final_embedding_matches_committed_hash() {
    let graph = fixture();
    let z = Coane::try_new(train_cfg()).unwrap().try_fit(&graph).unwrap();
    assert_eq!(z.shape(), (40, 8));
    let mut h = Fnv::new();
    for &x in z.as_slice() {
        h.f32(x);
    }
    blessed("GOLDEN_EMBEDDING_HASH", h.0, GOLDEN_EMBEDDING_HASH);
}

// ── scale-generator snapshots (10k nodes) ──────────────────────────────────
//
// The million-node scaling path (ISSUE 9) rests on the synthetic generator
// being reproducible across releases: BENCH_scale numbers and the CI scale
// smoke are only comparable if the same seed yields the same graph. This
// section pins a 10k-node instance — generator output (via the walks it
// induces), co-occurrence matrices, and the trained embedding — exactly as
// the 40-node section does for the committed fixture file. The graph itself
// is regenerated, not committed: at this size the seed *is* the fixture.

const GOLDEN_SCALE_WALK_STEPS: usize = 100_000;
const GOLDEN_SCALE_WALK_HASH: u64 = 0x176d2e71d19218ee;
const GOLDEN_SCALE_NUM_CONTEXTS: usize = 100_000;
const GOLDEN_SCALE_CONTEXT_HASH: u64 = 0x915717f82bc0ee1d;
const GOLDEN_SCALE_D_NNZ: usize = 197_300;
const GOLDEN_SCALE_D_HASH: u64 = 0xac87049adb70e845;
const GOLDEN_SCALE_D1_NNZ: usize = 75_982;
const GOLDEN_SCALE_D1_HASH: u64 = 0x38f7742024341744;
const GOLDEN_SCALE_EMBEDDING_HASH: u64 = 0x87d8f187bbd72266;

fn scale_fixture() -> AttributedGraph {
    use coane::datasets::ScaleConfig;
    coane::datasets::scale_graph(&ScaleConfig {
        attr_dim: 64,
        attrs_per_node: 4,
        seed: 42,
        ..ScaleConfig::with_nodes(10_000)
    })
    .0
}

fn scale_walk_cfg() -> WalkConfig {
    WalkConfig { walks_per_node: 1, walk_length: 10, p: 1.0, q: 1.0, seed: 42 }
}

fn scale_ctx_cfg() -> ContextsConfig {
    // c = 5 so windows reach past direct walk neighbours: D then contains
    // non-edge pairs and the D¹ edge filter actually bites at scale.
    ContextsConfig { context_size: 5, subsample_t: f64::INFINITY, seed: 7 }
}

#[test]
fn scale_graph_walks_match_committed_snapshot() {
    let graph = scale_fixture();
    assert_eq!(graph.num_nodes(), 10_000);
    let walks = Walker::new(&graph, scale_walk_cfg()).generate_all(1);
    let steps: usize = walks.iter().map(Vec::len).sum();
    assert_eq!(steps, GOLDEN_SCALE_WALK_STEPS);
    let mut h = Fnv::new();
    for walk in &walks {
        h.u32(walk.len() as u32);
        for &v in walk {
            h.u32(v);
        }
    }
    blessed("GOLDEN_SCALE_WALK_HASH", h.0, GOLDEN_SCALE_WALK_HASH);
}

#[test]
fn scale_graph_cooccurrence_matches_committed_snapshot() {
    let graph = scale_fixture();
    let walks = Walker::new(&graph, scale_walk_cfg()).generate_all(1);
    let contexts = ContextSet::build(&walks, graph.num_nodes(), &scale_ctx_cfg());
    assert_eq!(contexts.num_contexts(), GOLDEN_SCALE_NUM_CONTEXTS);
    let mut h = Fnv::new();
    for v in 0..graph.num_nodes() as u32 {
        h.u32(contexts.count(v) as u32);
        for &slot in contexts.slots_of(v) {
            h.u32(slot);
        }
    }
    blessed("GOLDEN_SCALE_CONTEXT_HASH", h.0, GOLDEN_SCALE_CONTEXT_HASH);

    let co = CoMatrices::build(&contexts, &graph);
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!("GOLDEN_SCALE_D_NNZ = {}", co.d.nnz());
        println!("GOLDEN_SCALE_D1_NNZ = {}", co.d1.nnz());
    } else {
        assert_eq!(co.d.nnz(), GOLDEN_SCALE_D_NNZ, "scale D nnz drifted");
        assert_eq!(co.d1.nnz(), GOLDEN_SCALE_D1_NNZ, "scale D¹ nnz drifted");
    }
    let hash_counts = |m: &coane::walks::cooccurrence::SparseCounts| {
        let mut h = Fnv::new();
        for i in 0..m.num_rows() as u32 {
            let (cols, vals) = m.row(i);
            h.u32(cols.len() as u32);
            for (&c, &v) in cols.iter().zip(vals) {
                h.u32(c);
                h.f32(v);
            }
        }
        h.0
    };
    blessed("GOLDEN_SCALE_D_HASH", hash_counts(&co.d), GOLDEN_SCALE_D_HASH);
    blessed("GOLDEN_SCALE_D1_HASH", hash_counts(&co.d1), GOLDEN_SCALE_D1_HASH);
}

#[test]
fn scale_graph_embedding_matches_committed_hash() {
    let graph = scale_fixture();
    // Trained through the full memory-budget path (streamed walks, blocked
    // co-occurrence, budgeted cache): the streaming suite proves these equal
    // the materialized pipeline, so this one hash pins both.
    let cfg = CoaneConfig {
        embed_dim: 8,
        context_size: 3,
        walks_per_node: 1,
        walk_length: 10,
        epochs: 2,
        batch_size: 2048,
        decoder_hidden: (16, 16),
        num_negatives: 3,
        subsample_t: 1e-3,
        walk_block_size: 1024,
        coocc_block_size: 4096,
        max_cache_bytes: 1 << 30,
        threads: 1,
        seed: 42,
        ..Default::default()
    };
    let z = Coane::try_new(cfg).unwrap().try_fit(&graph).unwrap();
    assert_eq!(z.shape(), (10_000, 8));
    let mut h = Fnv::new();
    for &x in z.as_slice() {
        h.f32(x);
    }
    blessed("GOLDEN_SCALE_EMBEDDING_HASH", h.0, GOLDEN_SCALE_EMBEDDING_HASH);
}
