//! Streaming / blocked / budgeted equivalence suite.
//!
//! The million-node scaling path (ISSUE 9) replaces three monolithic
//! pre-processing stages with bounded-memory equivalents:
//!
//! * streamed walk→context generation (`walk_block_size`),
//! * blocked co-occurrence accumulation (`coocc_block_size`),
//! * the budgeted context-row cache ladder (`max_cache_bytes`).
//!
//! Each is advertised as a *pure memory knob*: any setting must reproduce
//! the seed pipeline bit for bit, at any thread count, and must compose
//! with checkpoint/resume. This suite locks that contract end to end; the
//! per-stage unit tests live next to the stages themselves.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use coane::core::checkpoint::list_checkpoint_epochs;
use coane::core::{CacheMode, ContextRowCache, EncoderKind};
use coane::datasets::{scale_graph, ScaleConfig};
use coane::prelude::*;
use coane::walks::{CoMatrices, ContextSet, ContextsConfig, WalkConfig, Walker};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn small_graph() -> AttributedGraph {
    let cfg = SocialCircleConfig {
        num_nodes: 60,
        num_communities: 3,
        circles_per_community: 2,
        attr_dim: 40,
        num_edges: 180,
        mixing: 0.1,
        ..Default::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    social_circle_graph(&cfg, &mut rng).0
}

fn fast_config() -> CoaneConfig {
    CoaneConfig {
        embed_dim: 8,
        context_size: 3,
        walk_length: 12,
        walks_per_node: 2,
        epochs: 4,
        batch_size: 20,
        decoder_hidden: (16, 16),
        num_negatives: 3,
        subsample_t: 1e-3,
        threads: 1,
        ..Default::default()
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("coane_streaming").join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

// ---------------------------------------------------------------------------
// 1. Each knob alone: bit-identical embeddings at 1 and 4 threads.
// ---------------------------------------------------------------------------

#[test]
fn streamed_walk_training_is_bit_identical() {
    let g = small_graph();
    let reference = Coane::new(fast_config()).fit(&g);
    for threads in [1, 4] {
        for block in [1, 37, 1000] {
            let cfg = CoaneConfig { walk_block_size: block, threads, ..fast_config() };
            let z = Coane::new(cfg).fit(&g);
            assert_eq!(z, reference, "walk_block_size={block} threads={threads} diverged");
        }
    }
}

#[test]
fn blocked_cooccurrence_training_is_bit_identical() {
    let g = small_graph();
    let reference = Coane::new(fast_config()).fit(&g);
    for threads in [1, 4] {
        for block in [1, 13, 100_000] {
            let cfg = CoaneConfig { coocc_block_size: block, threads, ..fast_config() };
            let z = Coane::new(cfg).fit(&g);
            assert_eq!(z, reference, "coocc_block_size={block} threads={threads} diverged");
        }
    }
}

#[test]
fn budgeted_cache_training_is_bit_identical_on_every_rung() {
    let g = small_graph();

    // Read the unbudgeted cache's resident size off the telemetry stream so
    // the budgets below provably land on the compressed and rebuild rungs.
    let obs = Obs::enabled();
    let reference = Coane::new(fast_config()).with_observer(obs.clone()).fit(&g);
    let materialized_bytes = obs.counter("cache/resident_bytes");
    assert!(materialized_bytes > 0, "reference run did not report cache bytes");
    assert_eq!(obs.counter("cache/mode_materialized"), 1);

    for threads in [1, 4] {
        // (budget, the rung it must select)
        let cases = [
            (usize::MAX, "cache/mode_materialized"),
            (materialized_bytes as usize - 1, "cache/mode_compressed"),
            (1usize, "cache/mode_rebuild"),
        ];
        for (budget, mode_counter) in cases {
            let obs = Obs::enabled();
            let cfg = CoaneConfig { max_cache_bytes: budget, threads, ..fast_config() };
            let z = Coane::new(cfg).with_observer(obs.clone()).fit(&g);
            assert_eq!(obs.counter(mode_counter), 1, "budget={budget} picked the wrong rung");
            assert_eq!(z, reference, "budget={budget} threads={threads} diverged");
        }
    }
}

// ---------------------------------------------------------------------------
// 2. All knobs together, including with the FC encoder ablation.
// ---------------------------------------------------------------------------

#[test]
fn combined_memory_knobs_are_bit_identical() {
    let g = small_graph();
    for encoder in [EncoderKind::Convolution, EncoderKind::FullyConnected] {
        let reference = Coane::new(CoaneConfig { encoder, ..fast_config() }).fit(&g);
        for threads in [1, 4] {
            let cfg = CoaneConfig {
                encoder,
                walk_block_size: 53,
                coocc_block_size: 29,
                max_cache_bytes: 1, // worst case: rebuild rung
                threads,
                ..fast_config()
            };
            let z = Coane::new(cfg).fit(&g);
            assert_eq!(z, reference, "{encoder:?} threads={threads} diverged");
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Kill + resume on the streaming path: a checkpoint written by a
//    streaming, budgeted run resumes bit-identically — and matches an
//    uninterrupted run of the seed (fully materialized) pipeline.
// ---------------------------------------------------------------------------

#[test]
fn streaming_kill_and_resume_is_bit_identical() {
    let g = small_graph();
    let dir = tmp_dir("kill_resume_streaming");
    let ck = CheckpointConfig::new(&dir);
    let streaming = |epochs, threads| CoaneConfig {
        walk_block_size: 17,
        coocc_block_size: 11,
        max_cache_bytes: 1,
        epochs,
        threads,
        ..fast_config()
    };

    // "Killed" after epoch 2 of 4 (same device as fault_injection.rs: a
    // completed shorter run leaves exactly the post-kill directory state).
    Coane::new(streaming(2, 1)).fit_resumable(&g, &ck).unwrap();
    assert!(list_checkpoint_epochs(&dir).unwrap().contains(&2));

    // Resume at a different thread count — memory knobs and threads are all
    // excluded from the config fingerprint, so this must be accepted.
    let (z_resumed, stats) = Coane::new(streaming(4, 4)).fit_resumable(&g, &ck).unwrap();
    assert_eq!(stats.resumed_from_epoch, Some(2));

    let z_direct = Coane::new(fast_config()).fit(&g);
    assert_eq!(z_resumed, z_direct, "streaming resume diverged from materialized run");
}

// ---------------------------------------------------------------------------
// 4. Stage-level equivalence on a scale-generator graph: the components the
//    trainer composes, exercised on the graph family the scaling path
//    actually targets (power-law degrees, hubs, isolated-free).
// ---------------------------------------------------------------------------

#[test]
fn scale_graph_stage_equivalence() {
    let (g, _) = scale_graph(&ScaleConfig {
        attr_dim: 64,
        attrs_per_node: 4,
        ..ScaleConfig::with_nodes(1500)
    });
    let walker = Walker::new(
        &g,
        WalkConfig { walks_per_node: 1, walk_length: 10, seed: 3, ..Default::default() },
    );
    let ctx_cfg = ContextsConfig { context_size: 5, subsample_t: 1e-3, seed: 9 };

    let walks = walker.generate_all(2);
    let reference = ContextSet::build(&walks, g.num_nodes(), &ctx_cfg);
    for block in [64, 1024] {
        let streamed = ContextSet::build_streamed(&walker, g.num_nodes(), block, &ctx_cfg);
        assert_eq!(streamed.num_contexts(), reference.num_contexts(), "block={block}");
        for v in 0..g.num_nodes() as u32 {
            assert_eq!(streamed.slots_of(v), reference.slots_of(v), "block={block} node={v}");
        }
    }

    let co_ref = CoMatrices::build(&reference, &g);
    for block_nodes in [100, 1 << 20] {
        let co = CoMatrices::build_blocked(&reference, &g, block_nodes);
        assert_eq!(co.d, co_ref.d, "block_nodes={block_nodes}");
        assert_eq!(co.d1, co_ref.d1, "block_nodes={block_nodes}");
        assert_eq!(co.d_tilde, co_ref.d_tilde, "block_nodes={block_nodes}");
    }

    // Cache rungs produce identical batches on hub-heavy degree profiles too.
    let contexts = Arc::new(reference);
    let unbounded = ContextRowCache::build(&g, &contexts, EncoderKind::Convolution);
    let nodes: Vec<u32> = (0..g.num_nodes() as u32).step_by(97).collect();
    for budget in [unbounded.resident_bytes() - 1, 1] {
        let cache =
            ContextRowCache::build_budgeted(&g, &contexts, EncoderKind::Convolution, budget);
        assert_ne!(cache.mode(), CacheMode::Materialized, "budget={budget}");
        let a = cache.batch(&g, &nodes);
        let b = unbounded.batch(&g, &nodes);
        assert_eq!(*a.rb, *b.rb, "budget={budget}");
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.x_target, b.x_target);
    }
}
