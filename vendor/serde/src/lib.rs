//! Offline vendored stand-in for `serde`.
//!
//! The build container has no network access, so the real serde cannot be
//! fetched. This crate keeps the public *names* the workspace uses
//! (`serde::Serialize`, `serde::Deserialize`, derive macros of the same
//! names) but models serialization concretely through a JSON-like [`Value`]
//! tree instead of serde's visitor architecture — exactly what the
//! workspace's only consumer (`serde_json`) needs.

use std::collections::BTreeMap;
use std::fmt;

/// Derive macros matching the trait names, as in real serde.
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the intermediate form for all serialization.
///
/// Numbers are stored as `f64`; every integer the workspace persists (shape
/// fields, ids, a `format_version`) fits losslessly in the 53-bit mantissa.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

/// Serialization/deserialization error: a message plus a reverse field path.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error { message: msg.to_string() }
    }

    /// Wraps the error with the field it occurred in (used by the derive).
    pub fn in_field(self, field: &str) -> Self {
        Error { message: format!("field `{field}`: {}", self.message) }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a [`Value`].
pub trait Serialize {
    /// Converts `self` into the JSON value tree.
    fn to_value(&self) -> Value;
}

/// Types constructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Builds `Self` from the JSON value tree. Missing object fields are
    /// presented as [`Value::Null`], so `Option<T>` treats absence as `None`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {}", kind(other)))),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => *n,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {}",
                            kind(other)
                        )))
                    }
                };
                if n.fract() != 0.0 || !n.is_finite() {
                    return Err(Error::custom(format!("expected integer, got {n}")));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(Error::custom(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // Non-finite values have no JSON representation; emit null
                // (matching serde_json's behaviour).
                let x = *self as f64;
                if x.is_finite() { Value::Number(x) } else { Value::Null }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(Error::custom(format!(
                        "expected number, got {}",
                        kind(other)
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {}", kind(other)))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

// --------------------------------------------------------------- containers

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {}", kind(other)))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!("expected 2-element array, got {}", kind(other)))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

fn kind(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_absent_is_none() {
        let v: Option<Vec<u32>> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(v, None);
    }

    #[test]
    fn int_range_checked() {
        assert!(u8::from_value(&Value::Number(300.0)).is_err());
        assert!(u32::from_value(&Value::Number(-1.0)).is_err());
        assert!(u32::from_value(&Value::Number(1.5)).is_err());
        assert_eq!(u32::from_value(&Value::Number(7.0)).unwrap(), 7);
    }

    #[test]
    fn tuple_roundtrip() {
        let t = (3usize, String::from("w"));
        let v = t.to_value();
        let back: (usize, String) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn slice_ref_serializes() {
        let data = [1.0f32, 2.0];
        let r: &[f32] = &data;
        assert_eq!(r.to_value(), Value::Array(vec![Value::Number(1.0), Value::Number(2.0)]));
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(f32::NAN.to_value(), Value::Null);
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
    }
}
