//! Offline vendored `rand_chacha`: a genuine ChaCha8 stream cipher driven as a
//! deterministic RNG, implementing the workspace's vendored `rand` traits.
//!
//! The stream is a real ChaCha8 keystream (RFC 8439 quarter-round, 8 rounds),
//! seeded by a 32-byte key and a 64-bit block counter. It is deterministic and
//! high-quality, though not bit-compatible with upstream `rand_chacha` (the
//! workspace only relies on same-seed → same-stream determinism).

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// ChaCha8-based deterministic RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word index in `buf`; 16 means "buffer exhausted".
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A serializable snapshot of a [`ChaCha8Rng`]'s exact stream position.
///
/// The keystream buffer itself is *not* stored: it is a pure function of
/// `(key, counter)`, so [`ChaCha8Rng::from_state`] regenerates it. This keeps
/// the snapshot at 11 words and makes a restored generator produce the exact
/// same remaining stream as the original, word for word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaCha8State {
    /// The 256-bit key derived from the seed.
    pub key: [u32; 8],
    /// Index of the *next* keystream block to generate.
    pub counter: u64,
    /// Next unread word in the current block; 16 means "buffer exhausted".
    pub idx: u32,
}

impl ChaCha8Rng {
    /// Captures the generator's exact stream position for checkpointing.
    pub fn state(&self) -> ChaCha8State {
        ChaCha8State { key: self.key, counter: self.counter, idx: self.idx as u32 }
    }

    /// Rebuilds a generator that continues the stream exactly where
    /// [`ChaCha8Rng::state`] captured it.
    pub fn from_state(s: &ChaCha8State) -> Self {
        let mut rng = ChaCha8Rng { key: s.key, counter: s.counter, buf: [0; 16], idx: 16 };
        if s.idx < 16 {
            // The partially-consumed buffer belongs to block `counter - 1`
            // (refill advances the counter); regenerate it and fast-forward.
            rng.counter = s.counter.wrapping_sub(1);
            rng.refill();
            rng.idx = s.idx as usize;
        }
        rng
    }

    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            // "expand 32-byte k" constants
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // column round
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // diagonal round
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let word = self.buf[self.idx];
        self.idx += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng { key, counter: 0, buf: [0; 16], idx: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(1234);
        let mut b = ChaCha8Rng::seed_from_u64(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be uncorrelated, {same} collisions");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..10 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn words_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut ones = 0u32;
        const N: usize = 4096;
        for _ in 0..N {
            ones += rng.next_u32().count_ones();
        }
        let expected = (N as u32 * 32) / 2;
        let dev = ones.abs_diff(expected);
        assert!(dev < 2000, "bit balance off by {dev}");
    }

    #[test]
    fn state_roundtrip_mid_block() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..7 {
            a.next_u32(); // leave the buffer partially consumed
        }
        let mut b = ChaCha8Rng::from_state(&a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_roundtrip_fresh_and_block_boundary() {
        // Fresh generator (nothing consumed).
        let a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::from_state(&a.state());
        let mut a = a;
        assert_eq!(a.next_u64(), b.next_u64());
        // Exactly at a block boundary (buffer fully consumed): the first
        // next_u64 left idx at 2, so 14 more words exhaust the block.
        for _ in 0..14 {
            a.next_u32();
        }
        assert_eq!(a.state().idx, 16);
        let mut c = ChaCha8Rng::from_state(&a.state());
        for _ in 0..40 {
            assert_eq!(a.next_u64(), c.next_u64());
        }
    }

    #[test]
    fn gen_range_uniform_enough() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut hits = [0usize; 10];
        for _ in 0..10_000 {
            hits[rng.gen_range(0usize..10)] += 1;
        }
        for &h in &hits {
            assert!((850..1150).contains(&h), "bucket count {h}");
        }
    }
}
