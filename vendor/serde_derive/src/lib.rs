//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` crate.
//!
//! `syn`/`quote` are not available offline, so this parses the derive input
//! directly from the `proc_macro` token tree. Supported shape: structs with
//! named fields, optionally with lifetime-only generics (e.g. `<'a>`). That
//! covers every derive site in this workspace; anything else produces a
//! `compile_error!` with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructDef {
    name: String,
    /// Lifetime parameter list, e.g. `["'a"]`. Type parameters are rejected.
    lifetimes: Vec<String>,
    fields: Vec<String>,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

/// Parses `[attrs] [pub[(..)]] struct Name [<'a, ..>] { fields }`.
fn parse_struct(input: TokenStream) -> Result<StructDef, String> {
    let mut iter = input.into_iter().peekable();

    // Skip outer attributes and visibility until the `struct` keyword.
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                _ => return Err("malformed attribute".into()),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(other) => {
                return Err(format!("serde derive supports only structs, found `{other}`"))
            }
            None => return Err("serde derive supports only structs".into()),
        }
    }

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected struct name".into()),
    };

    // Optional generics: accept lifetimes only.
    let mut lifetimes = Vec::new();
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        iter.next();
        let mut depth = 1usize;
        let mut pending_lifetime = false;
        while depth > 0 {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '\'' => pending_lifetime = true,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
                Some(TokenTree::Ident(id)) => {
                    if pending_lifetime {
                        lifetimes.push(format!("'{id}"));
                        pending_lifetime = false;
                    } else {
                        return Err(format!(
                            "serde derive supports lifetime generics only, found type \
                             parameter `{id}` on `{name}`"
                        ));
                    }
                }
                Some(other) => return Err(format!("unsupported generics token `{other}`")),
                None => return Err("unterminated generics".into()),
            }
        }
    }

    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Err(format!("serde derive does not support tuple struct `{name}`"))
        }
        _ => return Err(format!("expected braced field list for `{name}`")),
    };

    // Walk the fields: skip attrs + visibility, take the ident before `:`,
    // then skip the type until a comma at angle-bracket depth zero.
    let mut fields = Vec::new();
    let mut body_iter = body.into_iter().peekable();
    loop {
        // field prelude
        let field_name = loop {
            match body_iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => match body_iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    _ => return Err("malformed field attribute".into()),
                },
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = body_iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            body_iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break Some(id.to_string()),
                Some(other) => return Err(format!("unexpected field token `{other}`")),
                None => break None,
            }
        };
        let Some(field_name) = field_name else { break };
        match body_iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{field_name}`")),
        }
        fields.push(field_name);
        // skip type tokens; generic angle brackets are not token groups, so
        // track their depth to find the field-separating comma
        let mut angle = 0usize;
        loop {
            match body_iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle = angle.saturating_sub(1);
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => break,
                Some(_) => {}
                None => break,
            }
        }
    }

    Ok(StructDef { name, lifetimes, fields })
}

fn generics_of(def: &StructDef) -> String {
    if def.lifetimes.is_empty() {
        String::new()
    } else {
        format!("<{}>", def.lifetimes.join(", "))
    }
}

/// Derives `serde::Serialize` by converting each field with
/// `Serialize::to_value` into a `Value::Object`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = match parse_struct(input) {
        Ok(d) => d,
        Err(e) => return compile_error(&e),
    };
    let g = generics_of(&def);
    let mut code = format!(
        "impl{g} ::serde::Serialize for {name}{g} {{ \
             fn to_value(&self) -> ::serde::Value {{ \
                 let mut __map = ::std::collections::BTreeMap::new(); ",
        name = def.name,
    );
    for f in &def.fields {
        code.push_str(&format!(
            "__map.insert(::std::string::String::from(\"{f}\"), \
                          ::serde::Serialize::to_value(&self.{f})); "
        ));
    }
    code.push_str("::serde::Value::Object(__map) } }");
    code.parse().unwrap()
}

/// Derives `serde::Deserialize` by pulling each field out of a
/// `Value::Object`; missing fields are presented as `Value::Null` so
/// `Option<T>` fields default to `None` and everything else errors.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = match parse_struct(input) {
        Ok(d) => d,
        Err(e) => return compile_error(&e),
    };
    if !def.lifetimes.is_empty() {
        return compile_error("cannot derive Deserialize for a struct with lifetimes");
    }
    let mut code = format!(
        "impl ::serde::Deserialize for {name} {{ \
             fn from_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ \
                 let __obj = match __v {{ \
                     ::serde::Value::Object(m) => m, \
                     _ => return ::std::result::Result::Err(::serde::Error::custom( \
                         \"expected object for {name}\")), \
                 }}; \
                 ::std::result::Result::Ok({name} {{ ",
        name = def.name,
    );
    for f in &def.fields {
        code.push_str(&format!(
            "{f}: match ::serde::Deserialize::from_value( \
                     __obj.get(\"{f}\").unwrap_or(&::serde::Value::Null)) {{ \
                 ::std::result::Result::Ok(x) => x, \
                 ::std::result::Result::Err(e) => \
                     return ::std::result::Result::Err(e.in_field(\"{f}\")), \
             }}, "
        ));
    }
    code.push_str("}) } }");
    code.parse().unwrap()
}
