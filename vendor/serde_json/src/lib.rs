//! Offline vendored stand-in for `serde_json`: serializes the vendored
//! `serde::Value` tree to JSON text and parses it back with a small
//! recursive-descent parser.
//!
//! Floats are written with Rust's shortest-roundtrip `Display`, so `f32`/`f64`
//! values survive a write→read cycle bit-exactly (the persistence tests in
//! this workspace assert exact equality of reloaded embeddings).

use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error { message: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(e)
    }
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    writer.write_all(out.as_bytes())?;
    Ok(())
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Reads a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Reads a value from a JSON byte stream.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

// ------------------------------------------------------------------- writing

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => write_seq(items.iter(), out, indent, level, '[', ']', |x, o| {
            write_value(x, o, indent, level + 1)
        }),
        Value::Object(map) => write_seq(map.iter(), out, indent, level, '{', '}', |(k, x), o| {
            write_string(k, o);
            o.push(':');
            if indent.is_some() {
                o.push(' ');
            }
            write_value(x, o, indent, level + 1);
        }),
    }
}

fn write_seq<I: ExactSizeIterator>(
    items: I,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(I::Item, &mut String),
) {
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        write_item(item, out);
    }
    if let Some(width) = indent {
        if !empty {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * level));
        }
    }
    out.push(close);
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        // Integral values print without the trailing `.0` Display would skip
        // anyway; keep plain formatting (Display for f64 already omits it).
        out.push_str(&format!("{n}"));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `]`, got `{}` at byte {}",
                                other as char, self.pos
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    let val = self.value()?;
                    map.insert(key, val);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}`, got `{}` at byte {}",
                                other as char, self.pos
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            other => {
                Err(Error::new(format!("unexpected `{}` at byte {}", other as char, self.pos)))
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we just consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b)?;
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| Error::new("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> Result<usize, Error> {
    match first {
        0x00..=0x7F => Ok(1),
        0xC0..=0xDF => Ok(2),
        0xE0..=0xEF => Ok(3),
        0xF0..=0xF7 => Ok(4),
        _ => Err(Error::new("invalid UTF-8 lead byte")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let mut obj = BTreeMap::new();
        obj.insert("rows".to_string(), Value::Number(2.0));
        obj.insert(
            "data".to_string(),
            Value::Array(vec![Value::Number(0.125), Value::Number(-3.5)]),
        );
        obj.insert("name".to_string(), Value::String("a\"b\\c\nd".to_string()));
        obj.insert("flag".to_string(), Value::Bool(true));
        obj.insert("missing".to_string(), Value::Null);
        let v = Value::Object(obj);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn f32_exact_roundtrip() {
        let xs: Vec<f32> = vec![0.1, 1.0 / 3.0, f32::MIN_POSITIVE, 1e30, -2.71881];
        let text = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn pretty_output_parses() {
        let v = Value::Array(vec![Value::Number(1.0), Value::Bool(false)]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn unicode_string_roundtrip() {
        let v = Value::String("héllo ☃ ok".to_string());
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }
}
