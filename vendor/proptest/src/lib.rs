//! Offline vendored mini `proptest`.
//!
//! Implements the subset of the proptest API this workspace's tests use:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), range / tuple /
//! `any` / `prop_map` / `collection::vec` strategies, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` assertion macros.
//!
//! No shrinking: a failing case reports its deterministic case index, and
//! cases are reproducible because each one is seeded from a hash of the test
//! path and the case number.

use rand::{Rng, SampleUniform, SeedableRng, Standard};
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// The RNG driving test-case generation.
pub type TestRng = ChaCha8Rng;

/// Non-success outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not satisfy a `prop_assume!` precondition; it is skipped.
    Reject,
    /// The property failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure from any displayable message (usable as a function
    /// reference in `.map_err(TestCaseError::fail)`).
    pub fn fail<S: std::fmt::Display>(msg: S) -> Self {
        TestCaseError::Fail(msg.to_string())
    }
}

/// Runner configuration; only the case count is configurable.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-case RNG: seeded from the test path and case index so
/// failures are reproducible run-to-run without a persistence file.
pub fn test_rng(test_path: &str, case: u32) -> TestRng {
    // FNV-1a over the path, then mix in the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h ^ ((case as u64) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A generator of test-case values.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

/// Full-range strategy for `any::<T>()`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform over the whole domain of `T` (integers full-range, floats in
/// `[0, 1)`, bools fair).
pub fn any<T: Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Rng, Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: exact or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual proptest imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines property tests. Each `name in strategy` binding draws a fresh
/// value per case; the body may use `prop_assert!` / `prop_assume!` and `?`
/// with [`TestCaseError`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rejected = 0u32;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        __rejected += 1;
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed at case {}: {}",
                            stringify!($name),
                            __case,
                            msg
                        );
                    }
                }
            }
            assert!(
                __rejected < __cfg.cases,
                "proptest `{}`: every case was rejected by prop_assume!",
                stringify!($name)
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`: {:?} != {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Skips the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(n in 3usize..9, x in -1.0f32..1.0) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn map_and_vec_work(v in crate::collection::vec(0u32..5, 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            for &x in &v {
                prop_assert!(x < 5);
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn question_mark_propagates(n in 1usize..5) {
            let ok: Result<usize, String> = Ok(n);
            let n2 = ok.map_err(TestCaseError::fail)?;
            prop_assert_eq!(n, n2);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(b in any::<bool>(), s in any::<u64>()) {
            prop_assert!(usize::from(b) <= 1);
            let _ = s;
        }
    }

    #[test]
    fn deterministic_generation() {
        let s = (1usize..100, any::<u64>());
        let a = s.generate(&mut crate::test_rng("t", 3));
        let b = s.generate(&mut crate::test_rng("t", 3));
        assert_eq!(a, b);
        let c = s.generate(&mut crate::test_rng("t", 4));
        assert_ne!(a, c);
    }
}
