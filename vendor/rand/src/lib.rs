//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container for this repository has no network access and no
//! crates-io registry cache, so the real `rand` cannot be fetched. This crate
//! reimplements exactly the API surface the workspace uses — [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] and
//! [`seq::SliceRandom::shuffle`] — with the same trait/method names so all
//! call sites compile unchanged.
//!
//! Streams are NOT bit-compatible with upstream `rand`; the workspace only
//! relies on determinism (same seed → same stream), which this crate
//! guarantees.

pub mod seq;

use std::ops::Range;

/// The core of a random number generator: a source of uniform `u32`/`u64`.
pub trait RngCore {
    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32;

    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it to a full seed with
    /// SplitMix64 (the same scheme upstream `rand` uses, so small seeds still
    /// produce well-mixed state).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits → uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Types samplable uniformly from a half-open range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draws one value uniformly from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                // Lemire-style widening multiply; bias < 2^-64 is negligible
                // for every use in this workspace.
                let x = rng.next_u64() as u128;
                range.start.wrapping_add(((x * span) >> 64) as Self)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        range.start + u * (range.end - range.start)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        range.start + u * (range.end - range.start)
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value of type `T` (floats in `[0, 1)`, integers full-range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform value in `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xorshift so high bits move too (gen_range uses high bits)
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut x = self.0;
            x ^= x >> 33;
            x = x.wrapping_mul(0xFF51AFD7ED558CCD);
            x ^= x >> 33;
            x
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn standard_floats_in_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = Counter(3);
        let mut hits = [0usize; 8];
        for _ in 0..8000 {
            hits[rng.gen_range(0usize..8)] += 1;
        }
        for &h in &hits {
            assert!((700..1300).contains(&h), "bucket count {h}");
        }
    }
}
