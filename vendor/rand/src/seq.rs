//! Sequence helpers mirroring `rand::seq`.

use crate::{Rng, RngCore};

/// Slice extension methods mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher-Yates, deterministic per stream).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    impl SeedableRng for Lcg {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            Lcg(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b = a.clone();
        a.shuffle(&mut Lcg::seed_from_u64(42));
        b.shuffle(&mut Lcg::seed_from_u64(42));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty() {
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut Lcg::seed_from_u64(1)).is_none());
        let one = [7u32];
        assert_eq!(one.choose(&mut Lcg::seed_from_u64(1)), Some(&7));
    }
}
