//! Offline vendored stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `b.iter(..)`, `criterion_group!`/`criterion_main!`, `black_box` — with a
//! simple wall-clock measurement loop (median of `sample_size` samples, each
//! auto-scaled to run ≥ ~5 ms). No statistics engine, plots, or reports:
//! results go to stdout, one line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample measurement result, exposed so callers (e.g. a JSON emitter)
/// can persist timings.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Median time per iteration, in nanoseconds.
    pub median_ns: f64,
    /// Minimum time per iteration, in nanoseconds.
    pub min_ns: f64,
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup { _criterion: self, group: name.to_string(), sample_size: 30 }
    }
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id rendered from the benchmark's parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }

    /// Id with a function name and a parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let sample = run_bench(self.sample_size, |b| f(b));
        report(&self.group, &id.to_string(), sample);
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let sample = run_bench(self.sample_size, |b| f(b, input));
        report(&self.group, &id.to_string(), sample);
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Measures one benchmark: calibrates an iteration count so each sample runs
/// at least ~5 ms, then records `sample_size` samples.
pub fn run_bench<F: FnMut(&mut Bencher)>(sample_size: usize, mut f: F) -> Sample {
    // Calibration: grow the iteration count until a sample is long enough to
    // time reliably, or a single iteration already is.
    let mut iters: u64 = 1;
    let target = Duration::from_millis(5);
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= target || iters >= 1 << 20 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (target.as_nanos() / b.elapsed.as_nanos().max(1) + 1).min(16) as u64
        };
        iters = iters.saturating_mul(grow.max(2));
    }

    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    Sample { median_ns: per_iter[per_iter.len() / 2], min_ns: per_iter[0] }
}

fn report(group: &str, id: &str, s: Sample) {
    println!("{group}/{id}: median {} min {}", format_ns(s.median_ns), format_ns(s.min_ns));
}

/// Human-readable duration from nanoseconds.
pub fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let s = run_bench(3, |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..1000u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        assert!(s.median_ns > 0.0);
        assert!(s.min_ns <= s.median_ns);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &x| b.iter(|| x * 2));
        g.finish();
    }
}
